//! Shared runner: executes the cross-layer framework on every
//! hardware-feasible catalog entry. Tables II/III and Fig. 3 all consume
//! the same study results.

use pax_core::framework::{CircuitStudy, Framework, FrameworkConfig};
use pax_ml::synth_data::SynthConfig;

use crate::catalog::{hardware_entries, Entry};
use crate::table1::tech_for;

/// A study together with its catalog entry.
#[derive(Debug)]
pub struct StudyRun {
    /// The catalog entry (model + data).
    pub entry: Entry,
    /// The framework's full output.
    pub study: CircuitStudy,
}

/// Runs the framework on one entry with the paper's configuration.
pub fn run_one(entry: Entry) -> StudyRun {
    let cfg = FrameworkConfig { tech: tech_for(entry.dataset, entry.kind), ..Default::default() };
    let fw = Framework::new(cfg);
    let study = fw.run_study(&entry.model, &entry.train, &entry.test);
    StudyRun { entry, study }
}

/// Runs the framework on all 14 hardware-feasible circuits.
///
/// Each study already parallelizes its pruning evaluation internally, so
/// circuits run sequentially to keep peak memory bounded.
pub fn run_all(cfg: &SynthConfig) -> Vec<StudyRun> {
    hardware_entries(cfg).into_iter().map(run_one).collect()
}

/// Runs the framework on the circuits whose label contains `filter`
/// (e.g. `"redwine"` or `"svm-c"`).
pub fn run_filtered(cfg: &SynthConfig, filter: &str) -> Vec<StudyRun> {
    hardware_entries(cfg).into_iter().filter(|e| e.label().contains(filter)).map(run_one).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{train_entry, DatasetId};
    use pax_ml::quant::ModelKind;

    #[test]
    fn one_study_runs_end_to_end() {
        let cfg = SynthConfig::small();
        let entry = train_entry(DatasetId::RedWine, ModelKind::SvmR, &cfg);
        let run = run_one(entry);
        assert!(!run.study.cross.is_empty());
        assert!(run.study.baseline.area_mm2 > 0.0);
        assert_eq!(run.study.kind, ModelKind::SvmR);
    }

    #[test]
    fn filter_selects_by_label() {
        let cfg = SynthConfig { size_factor: 0.08, ..SynthConfig::small() };
        let runs = run_filtered(&cfg, "redwine svm");
        assert_eq!(runs.len(), 2); // svm-c and svm-r
    }
}
