//! §III-B area-proxy validation: over random weighted sums, correlate
//! `Σ AREA(BM_wᵢ)` (the optimization proxy) against the area of the
//! actually synthesized weighted-sum circuit. The paper reports a
//! Pearson correlation of 0.91 over 1000 random weighted sums.

use pax_core::mult_cache::MultCache;
use pax_netlist::{Bus, NetlistBuilder};
use pax_synth::{area, bits, opt, wsum};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Result of the proxy-validation experiment.
#[derive(Debug, Clone)]
pub struct ProxyResult {
    /// Pearson correlation coefficient between proxy and actual area.
    pub pearson_r: f64,
    /// `(proxy_mm2, actual_mm2)` per sampled weighted sum.
    pub points: Vec<(f64, f64)>,
}

/// Samples `n` random weighted sums (random coefficient count, values
/// and input widths, mirroring the paper's setup) and correlates proxy
/// vs. synthesized area.
pub fn run(cache: &MultCache, n: usize, seed: u64) -> ProxyResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let specs: Vec<(u32, Vec<i64>)> = (0..n)
        .map(|_| {
            let in_bits = *[4u32, 6, 8, 12].get(rng.random_range(0..4usize)).expect("fixed set");
            let n_coefs = rng.random_range(3..=16usize);
            let weights: Vec<i64> = (0..n_coefs).map(|_| rng.random_range(-128i64..=127)).collect();
            (in_bits, weights)
        })
        .collect();

    let threads = std::thread::available_parallelism().map_or(4, |t| t.get()).min(16);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let indexed: Vec<(usize, (f64, f64))> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let next = &next;
                let specs = &specs;
                s.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= specs.len() {
                            break;
                        }
                        let (in_bits, weights) = &specs[i];
                        local.push((i, measure(cache, *in_bits, weights)));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("proxy thread")).collect()
    });
    let mut points = vec![(0.0, 0.0); n];
    for (i, p) in indexed {
        points[i] = p;
    }
    ProxyResult { pearson_r: pearson(&points), points }
}

fn measure(cache: &MultCache, in_bits: u32, weights: &[i64]) -> (f64, f64) {
    let proxy: f64 = weights.iter().map(|&w| cache.area(in_bits, w)).sum();
    let mut b = NetlistBuilder::new("ws");
    let inputs: Vec<Bus> =
        (0..weights.len()).map(|i| b.input_port(format!("x{i}"), in_bits as usize)).collect();
    let xmax = (1i64 << in_bits) - 1;
    let (mut lo, mut hi) = (0i64, 0i64);
    for &w in weights {
        if w > 0 {
            hi += w * xmax;
        } else {
            lo += w * xmax;
        }
    }
    let width = bits::signed_width_for(lo.min(0), hi.max(0)).max(2);
    let sum = wsum::weighted_sum(&mut b, &inputs, weights, 0, width);
    b.output_port("s", sum);
    let nl = opt::optimize(&b.finish());
    let actual = area::area_mm2(&nl, cache.library()).expect("library covers cells");
    (proxy, actual)
}

/// Pearson correlation of paired samples.
pub fn pearson(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    assert!(n >= 2.0, "need at least two samples");
    let mx = points.iter().map(|p| p.0).sum::<f64>() / n;
    let my = points.iter().map(|p| p.1).sum::<f64>() / n;
    let cov: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    let vx: f64 = points.iter().map(|p| (p.0 - mx).powi(2)).sum();
    let vy: f64 = points.iter().map(|p| (p.1 - my).powi(2)).sum();
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_basics() {
        let perfect: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 2.0 * i as f64)).collect();
        assert!((pearson(&perfect) - 1.0).abs() < 1e-12);
        let anti: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -(i as f64))).collect();
        assert!((pearson(&anti) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn proxy_correlates_strongly() {
        let cache = MultCache::new(egt_pdk::egt_library());
        // 60 sums keep the test quick; the bench runs the full 1000.
        let r = run(&cache, 60, 99);
        assert_eq!(r.points.len(), 60);
        assert!(
            r.pearson_r > 0.8,
            "the area proxy must track synthesized area (paper: 0.91), got {}",
            r.pearson_r
        );
    }
}
