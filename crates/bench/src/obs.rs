//! Observability check: one journalled NSGA-II study on the cardio
//! `svm-r` circuit, followed by a self-verification pass over the
//! emitted JSONL (`paper obs`).
//!
//! The study runs with a [`pax_obs::StudyJournal`] attached, so every
//! ask/tell generation appends one event record. Afterwards the journal
//! is read back and checked the way a dashboard consumer would: every
//! line must parse under the strict schema, the hypervolume trace must
//! be monotone non-decreasing (the archive only improves against the
//! fixed reference point), and the phase-timed evaluation spans must
//! account for the evaluator's work. The rendered report carries the
//! verdicts so CI can assert on the text.

use std::fmt::Write as _;
use std::path::Path;
use std::sync::Arc;

use pax_bespoke::BespokeCircuit;
use pax_core::coeff_approx::approximate_model;
use pax_core::explore::{CoeffGene, Engine, EvalContext, Evaluator, Nsga2, Nsga2Config};
use pax_core::framework::{Framework, FrameworkConfig};
use pax_ml::quant::ModelKind;
use pax_ml::synth_data::SynthConfig;
use pax_obs::{JournalEvent, StudyJournal};

use crate::catalog::{train_entry, DatasetId};
use crate::table1::tech_for;

/// Outcome of the journalled study plus the read-back verification.
#[derive(Debug)]
pub struct ObsRow {
    /// Circuit label (`cardio svm-r`).
    pub circuit: String,
    /// Ask/tell generations the strategy ran (= journal lines).
    pub generations: usize,
    /// Distinct candidate evaluations spent.
    pub evals: usize,
    /// Final Pareto-archive size.
    pub front: usize,
    /// Final archive hypervolume against the journal's reference point.
    pub final_hv: f64,
    /// Journal lines that parsed under the strict schema.
    pub parsed_lines: usize,
    /// Whether every journal line parsed.
    pub all_lines_parse: bool,
    /// Whether the per-generation hypervolume never decreased.
    pub hv_monotone: bool,
    /// Per-phase evaluation spans: `(phase, calls, milliseconds)`.
    pub phases: Vec<(String, u64, f64)>,
}

impl ObsRow {
    /// Whether the read-back verification passed entirely.
    pub fn passes(&self) -> bool {
        self.all_lines_parse && self.hv_monotone && self.generations > 0 && self.front > 0
    }
}

/// Runs the journalled cardio svm-r NSGA-II study, writing the journal
/// to `journal_path`, then reads the file back and verifies it.
pub fn run(cfg: &SynthConfig, seed: u64, journal_path: &Path) -> ObsRow {
    let entry = train_entry(DatasetId::Cardio, ModelKind::SvmR, cfg);
    let fw = Framework::new(FrameworkConfig {
        tech: tech_for(entry.dataset, entry.kind),
        ..Default::default()
    });
    let (model, train, test) = (&entry.model, &entry.train, &entry.test);

    // Both base circuits of the cross-layer flow, like the framework's
    // own study: the genome spans baseline and coefficient-approximated
    // pruning at once.
    fw.cache().build_range(model.spec.input_bits, model.spec.coef_bits);
    let (approx, _) = approximate_model(model, fw.cache(), &fw.config().coeff);
    let base_nl = pax_synth::opt::optimize(&BespokeCircuit::generate(model).netlist);
    let approx_nl = pax_synth::opt::optimize(&BespokeCircuit::generate(&approx).netlist);
    let base_analysis = pax_core::prune::analyze(&base_nl, model, train);
    let approx_analysis = pax_core::prune::analyze(&approx_nl, &approx, train);
    let contexts = vec![
        EvalContext {
            coeff: CoeffGene::exact(),
            netlist: &base_nl,
            model,
            analysis: base_analysis,
        },
        EvalContext {
            coeff: CoeffGene::uniform(1),
            netlist: &approx_nl,
            model: &approx,
            analysis: approx_analysis,
        },
    ];

    let evaluator = Evaluator::new(fw.library(), &fw.config().tech, test, contexts);
    let mut engine = Engine::new(&evaluator, &fw.config().prune);
    engine.set_journal(Arc::new(StudyJournal::create(journal_path).expect("create journal")));
    engine.set_journal_label(format!("{}/obs", entry.label()));
    let mut nsga = Nsga2::new(Nsga2Config {
        population: 8,
        generations: 8,
        max_evals: 64,
        seed,
        ..Default::default()
    });
    let outcome = engine.run(&mut nsga).expect("journalled NSGA-II study");

    // Read-back verification: the consumer's view of the file on disk.
    let text = std::fs::read_to_string(journal_path).expect("read journal back");
    let mut parsed = Vec::new();
    let mut all_parse = true;
    for line in text.lines() {
        match JournalEvent::parse(line) {
            Ok(event) => parsed.push(event),
            Err(e) => {
                eprintln!("[obs] journal line failed to parse: {e}\n  {line}");
                all_parse = false;
            }
        }
    }
    let hv_monotone = parsed
        .iter()
        .filter_map(|e| e.hypervolume)
        .try_fold(f64::NEG_INFINITY, |prev, hv| if hv + 1e-12 >= prev { Ok(hv) } else { Err(()) })
        .is_ok();

    let stats = &outcome.stats;
    let phases = stats
        .telemetry
        .phases
        .counts()
        .iter()
        .map(|&(name, calls)| {
            let ns = stats.telemetry.phases.get(name).map_or(0, |p| p.ns);
            (name.to_owned(), calls, ns as f64 / 1e6)
        })
        .collect();

    ObsRow {
        circuit: entry.label(),
        generations: stats.generations,
        evals: stats.evaluated,
        front: stats.front_size,
        final_hv: stats.hypervolume.unwrap_or(0.0),
        parsed_lines: parsed.len(),
        all_lines_parse: all_parse,
        hv_monotone,
        phases,
    }
}

/// Markdown rendering of the study and its verification verdicts.
pub fn render(row: &ObsRow) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "| Circuit | Generations | Evals | Front | Final HV | Lines parsed | HV monotone |\n\
         |---|---|---|---|---|---|---|\n\
         | {} | {} | {} | {} | {:.4} | {}/{} | {} |",
        row.circuit,
        row.generations,
        row.evals,
        row.front,
        row.final_hv,
        row.parsed_lines,
        row.generations,
        if row.hv_monotone { "yes" } else { "NO" },
    );
    out.push('\n');
    out.push_str("| Phase | Calls | ms |\n|---|---|---|\n");
    for (name, calls, ms) in &row.phases {
        let _ = writeln!(out, "| {name} | {calls} | {ms:.1} |");
    }
    let _ = writeln!(out, "\njournal verification: {}", if row.passes() { "ok" } else { "FAILED" });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journalled_study_verifies_end_to_end() {
        let dir = std::env::temp_dir().join("pax-bench-obs-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        std::fs::remove_file(&path).ok();
        let row = run(&SynthConfig::small(), 11, &path);
        assert!(row.passes(), "{row:?}");
        assert_eq!(row.parsed_lines, row.generations, "one journal line per generation");
        assert!(row.final_hv > 0.0);
        assert!(
            row.phases.iter().any(|(name, calls, _)| name == "masked-sim" && *calls > 0),
            "evaluation spans must attribute masked-sim work: {:?}",
            row.phases
        );
        let text = render(&row);
        assert!(text.contains("journal verification: ok"), "{text}");
        std::fs::remove_file(&path).ok();
    }
}
