//! The model catalog: every (dataset, family) pair of the paper's
//! Table I, trained deterministically with fixed seeds.
//!
//! Topologies follow the paper: one hidden layer with the least number
//! of neurons reaching near-maximum accuracy — (21,3,·) for Cardio,
//! (16,5,·) for Pendigits, (11,2,·) for RedWine, (11,4,·) for WhiteWine
//! — 8-bit coefficients, 4-bit inputs, 70%/30% split.

use pax_ml::quant::{ModelKind, QuantSpec, QuantizedModel};
use pax_ml::synth_data::{cardio, pendigits, redwine, whitewine, SynthConfig};
use pax_ml::train::mlp::{train_mlp_classifier, train_mlp_regressor, MlpParams};
use pax_ml::train::svm::{train_svm_classifier, SvmParams};
use pax_ml::train::svr::{train_svr, SvrParams};
use pax_ml::{normalize, Dataset};

/// The four paper datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetId {
    /// Cardiotocography: 21 features, 3 ordinal classes.
    Cardio,
    /// Pendigits: 16 features, 10 unordered classes.
    Pendigits,
    /// Red wine quality: 11 features, 6 ordinal classes.
    RedWine,
    /// White wine quality: 11 features, 7 ordinal classes.
    WhiteWine,
}

impl DatasetId {
    /// All datasets in Table I order.
    pub fn all() -> [DatasetId; 4] {
        [DatasetId::Cardio, DatasetId::Pendigits, DatasetId::RedWine, DatasetId::WhiteWine]
    }

    /// Display name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Cardio => "cardio",
            DatasetId::Pendigits => "pendigits",
            DatasetId::RedWine => "redwine",
            DatasetId::WhiteWine => "whitewine",
        }
    }

    /// Hidden-layer width the paper selected for this dataset's MLPs.
    pub fn mlp_hidden(self) -> usize {
        match self {
            DatasetId::Cardio => 3,
            DatasetId::Pendigits => 5,
            DatasetId::RedWine => 2,
            DatasetId::WhiteWine => 4,
        }
    }

    /// Generates the synthetic dataset (normalized 70/30 split).
    pub fn load(self, cfg: &SynthConfig) -> (Dataset, Dataset) {
        let data = match self {
            DatasetId::Cardio => cardio(cfg),
            DatasetId::Pendigits => pendigits(cfg),
            DatasetId::RedWine => redwine(cfg),
            DatasetId::WhiteWine => whitewine(cfg),
        };
        let (train, test) = data.split(0.7, 0x5_EED0 + self as u64);
        normalize(&train, &test)
    }
}

/// One catalog entry: a trained + quantized model and its data.
#[derive(Debug, Clone)]
pub struct Entry {
    /// Source dataset.
    pub dataset: DatasetId,
    /// Model family.
    pub kind: ModelKind,
    /// Quantized (8-bit coefficient, 4-bit input) model.
    pub model: QuantizedModel,
    /// Normalized training split.
    pub train: Dataset,
    /// Normalized test split.
    pub test: Dataset,
    /// Paper Table I "T" column: MLP topology, or the number of 1-vs-1
    /// classifiers for SVM-C, or 1 for SVM-R.
    pub t_column: String,
    /// Whether the paper evaluates this model in hardware (the two
    /// Pendigits regressors are accuracy-useless and excluded).
    pub hardware_feasible: bool,
}

impl Entry {
    /// Quantized test accuracy (the paper's Table I accuracy column).
    pub fn quantized_accuracy(&self) -> f64 {
        self.model.accuracy_on(&self.test)
    }

    /// Identifier like `cardio mlp-c`.
    pub fn label(&self) -> String {
        format!("{} {}", self.dataset.name(), self.kind.tag())
    }
}

/// Builds one entry. Hyper-parameters are fixed per (dataset, family)
/// pair — chosen offline with the crate's randomized search, then pinned
/// for reproducibility.
pub fn train_entry(dataset: DatasetId, kind: ModelKind, cfg: &SynthConfig) -> Entry {
    let (train, test) = dataset.load(cfg);
    let seed = 0xA11CE ^ (dataset as u64) << 4 ^ kind as u64;
    let spec = QuantSpec::default();
    let hidden = dataset.mlp_hidden();
    let (model, t_column) = match kind {
        ModelKind::MlpC => {
            let p = MlpParams { hidden, lr: mlp_lr(dataset), epochs: 300, ..MlpParams::default() };
            let m = train_mlp_classifier(&train, &p, seed);
            let topo = m.topology();
            (QuantizedModel::from_mlp(dataset.name(), &m, train.n_classes, spec), topo)
        }
        ModelKind::MlpR => {
            let p = MlpParams { hidden, lr: 0.01, epochs: 400, ..MlpParams::default() };
            let m = train_mlp_regressor(&train, &p, seed);
            let topo = m.topology();
            (QuantizedModel::from_mlp(dataset.name(), &m, train.n_classes, spec), topo)
        }
        ModelKind::SvmC => {
            let p = SvmParams { lr: 0.1, epochs: 800, batch: 64, ..SvmParams::default() };
            let m = train_svm_classifier(&train, &p, seed);
            let t = m.n_pairwise_classifiers().to_string();
            (QuantizedModel::from_linear_classifier(dataset.name(), &m, spec), t)
        }
        ModelKind::SvmR => {
            let p = SvrParams { epochs: 300, ..SvrParams::default() };
            let m = train_svr(&train, &p, seed);
            (QuantizedModel::from_svr(dataset.name(), &m, train.n_classes, spec), "1".into())
        }
    };
    // The paper drops the Pendigits regressors: regressing an unordered
    // digit label yields useless accuracy (0.37 / 0.23 in Table I).
    let hardware_feasible =
        !(dataset == DatasetId::Pendigits && matches!(kind, ModelKind::MlpR | ModelKind::SvmR));
    Entry { dataset, kind, model, train, test, t_column, hardware_feasible }
}

fn mlp_lr(dataset: DatasetId) -> f64 {
    match dataset {
        DatasetId::Pendigits => 0.08,
        _ => 0.05,
    }
}

/// All 16 Table I entries, in the paper's row-major order
/// (dataset-major, family-minor).
pub fn all_entries(cfg: &SynthConfig) -> Vec<Entry> {
    let kinds = [ModelKind::MlpC, ModelKind::MlpR, ModelKind::SvmC, ModelKind::SvmR];
    let pairs: Vec<(DatasetId, ModelKind)> =
        DatasetId::all().into_iter().flat_map(|d| kinds.into_iter().map(move |k| (d, k))).collect();
    // Train in parallel: entries are completely independent.
    std::thread::scope(|s| {
        let handles: Vec<_> =
            pairs.iter().map(|&(d, k)| s.spawn(move || train_entry(d, k, cfg))).collect();
        handles.into_iter().map(|h| h.join().expect("training thread")).collect()
    })
}

/// The 14 hardware-feasible entries (Table I minus the Pendigits
/// regressors) — the circuits of Fig. 3 and Tables II/III.
pub fn hardware_entries(cfg: &SynthConfig) -> Vec<Entry> {
    all_entries(cfg).into_iter().filter(|e| e.hardware_feasible).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_shapes_match_table1() {
        let cfg = SynthConfig::small();
        let e = train_entry(DatasetId::Cardio, ModelKind::MlpC, &cfg);
        assert_eq!(e.t_column, "(21,3,3)");
        assert_eq!(e.model.n_coefficients(), 72); // Table I #C
        let e = train_entry(DatasetId::RedWine, ModelKind::SvmC, &cfg);
        assert_eq!(e.t_column, "15");
        assert_eq!(e.model.n_coefficients(), 66);
        let e = train_entry(DatasetId::WhiteWine, ModelKind::SvmR, &cfg);
        assert_eq!(e.model.n_coefficients(), 11);
        assert_eq!(e.t_column, "1");
    }

    #[test]
    fn pendigits_regressors_are_excluded_from_hardware() {
        let cfg = SynthConfig::small();
        let e = train_entry(DatasetId::Pendigits, ModelKind::SvmR, &cfg);
        assert!(!e.hardware_feasible);
        let e = train_entry(DatasetId::Pendigits, ModelKind::SvmC, &cfg);
        assert!(e.hardware_feasible);
    }

    #[test]
    fn training_is_deterministic() {
        let cfg = SynthConfig::small();
        let a = train_entry(DatasetId::RedWine, ModelKind::SvmR, &cfg);
        let b = train_entry(DatasetId::RedWine, ModelKind::SvmR, &cfg);
        assert_eq!(a.model, b.model);
    }
}
