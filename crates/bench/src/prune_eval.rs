//! Candidate-evaluation throughput study: rebuild pipeline versus
//! overlay evaluation (`BENCH_prune_eval.json`).
//!
//! Both modes drive the *same* exploration engine on the same circuits
//! — first the paper-faithful exhaustive `(τc, φc)` grid, then a
//! budgeted NSGA-II pass — differing only in
//! [`EvalMode`]: `Rebuild` re-synthesizes, recompiles and re-simulates
//! every candidate (the legacy pipeline, kept as the differential
//! oracle), `Overlay` evaluates candidates as prune masks on the shared
//! compiled tape. The study records wall-clock and per-candidate
//! throughput for each mode, and verifies the two modes returned
//! **bit-identical** design points before reporting any speedup.
//!
//! Acceptance bar (recorded in the JSON): overlay reaches ≥ 3× the
//! rebuild pipeline's candidate-evaluation throughput on the paper's
//! exhaustive grid sweep of the cardio svm-r circuit.

use std::fmt::Write as _;
use std::time::Instant;

use pax_core::explore::{
    CoeffGene, Engine, EvalContext, EvalMode, Evaluator, ExhaustiveGrid, Nsga2, Nsga2Config,
    SearchOutcome,
};
use pax_core::framework::{Framework, FrameworkConfig};
use pax_core::prune::PruneAnalysis;
use pax_ml::quant::ModelKind;
use pax_ml::synth_data::SynthConfig;
use pax_netlist::Netlist;

use crate::catalog::{train_entry, DatasetId, Entry};
use crate::table1::tech_for;

/// One circuit's rebuild-vs-overlay measurement.
#[derive(Debug)]
pub struct PruneEvalRow {
    /// Circuit label (`cardio svm-r`, …).
    pub circuit: String,
    /// Distinct prunings the exhaustive grid evaluated (per mode).
    pub grid_candidates: usize,
    /// Grid sweep wall-clock, rebuild pipeline, in ms.
    pub grid_rebuild_ms: f64,
    /// Grid sweep wall-clock, overlay evaluation, in ms.
    pub grid_overlay_ms: f64,
    /// Fresh evaluations the NSGA-II pass spent (per mode).
    pub nsga_candidates: usize,
    /// NSGA-II wall-clock, rebuild pipeline, in ms.
    pub nsga_rebuild_ms: f64,
    /// NSGA-II wall-clock, overlay evaluation, in ms.
    pub nsga_overlay_ms: f64,
    /// Whether both modes returned bit-identical design points on both
    /// studies (speedups are meaningless otherwise).
    pub identical: bool,
}

impl PruneEvalRow {
    /// Grid candidate-evaluation throughput ratio (overlay ÷ rebuild).
    pub fn grid_speedup(&self) -> f64 {
        self.grid_rebuild_ms / self.grid_overlay_ms.max(1e-9)
    }

    /// NSGA-II candidate-evaluation throughput ratio.
    pub fn nsga_speedup(&self) -> f64 {
        self.nsga_rebuild_ms / self.nsga_overlay_ms.max(1e-9)
    }

    /// Grid candidates per second, rebuild pipeline.
    pub fn grid_rebuild_cps(&self) -> f64 {
        self.grid_candidates as f64 / (self.grid_rebuild_ms / 1e3).max(1e-9)
    }

    /// Grid candidates per second, overlay evaluation.
    pub fn grid_overlay_cps(&self) -> f64 {
        self.grid_candidates as f64 / (self.grid_overlay_ms / 1e3).max(1e-9)
    }
}

/// Timing repetitions per measurement; the minimum wall-clock is
/// reported (standard best-of-N to shed scheduler noise — both modes
/// get the same treatment).
const REPEATS: usize = 3;

/// Runs one engine-driven study (grid or NSGA-II) in the given mode,
/// timing evaluator construction + the full ask/evaluate/tell loop.
/// Every repetition rebuilds the evaluator and a cold engine, so cache
/// effects cannot leak between modes or repetitions.
fn timed_run(
    entry: &Entry,
    base: &Netlist,
    analysis: &PruneAnalysis,
    fw: &Framework,
    mode: EvalMode,
    nsga: Option<&Nsga2Config>,
) -> (SearchOutcome, f64) {
    let mut best: Option<(SearchOutcome, f64)> = None;
    for _ in 0..REPEATS {
        let t = Instant::now();
        let evaluator = Evaluator::new(
            fw.library(),
            &fw.config().tech,
            &entry.test,
            vec![EvalContext {
                coeff: CoeffGene::exact(),
                netlist: base,
                model: &entry.model,
                analysis: analysis.clone(),
            }],
        )
        .with_mode(mode);
        let mut engine = Engine::new(&evaluator, &fw.config().prune);
        let outcome = match nsga {
            None => engine.run(&mut ExhaustiveGrid::new()),
            Some(cfg) => engine.run(&mut Nsga2::new(cfg.clone())),
        }
        .expect("study evaluation");
        let ms = t.elapsed().as_secs_f64() * 1e3;
        if best.as_ref().is_none_or(|(_, b)| ms < *b) {
            best = Some((outcome, ms));
        }
    }
    best.expect("at least one repetition")
}

/// Whether two outcomes carry bit-identical design points in the same
/// order.
fn bit_identical(a: &SearchOutcome, b: &SearchOutcome) -> bool {
    a.points.len() == b.points.len()
        && a.points.iter().zip(&b.points).all(|((ca, pa), (cb, pb))| {
            ca == cb
                && pa.accuracy.to_bits() == pb.accuracy.to_bits()
                && pa.area_mm2.to_bits() == pb.area_mm2.to_bits()
                && pa.power_mw.to_bits() == pb.power_mw.to_bits()
                && pa.critical_ms.to_bits() == pb.critical_ms.to_bits()
                && pa.gate_count == pb.gate_count
        })
}

/// Runs the comparison on one catalog entry.
pub fn run_entry(entry: &Entry, seed: u64) -> PruneEvalRow {
    let cfg = FrameworkConfig { tech: tech_for(entry.dataset, entry.kind), ..Default::default() };
    let fw = Framework::new(cfg);
    let base =
        pax_synth::opt::optimize(&pax_bespoke::BespokeCircuit::generate(&entry.model).netlist);
    let analysis = pax_core::prune::analyze(&base, &entry.model, &entry.train);

    // The paper's exhaustive grid, both modes on cold engines.
    let (grid_rebuild, grid_rebuild_ms) =
        timed_run(entry, &base, &analysis, &fw, EvalMode::Rebuild, None);
    let (grid_overlay, grid_overlay_ms) =
        timed_run(entry, &base, &analysis, &fw, EvalMode::Overlay, None);

    // A budgeted evolutionary pass (fixed seed, identical genomes in
    // both modes because evaluation results — and therefore selection —
    // are bit-identical).
    let budget = (grid_rebuild.stats.evaluated / 4).max(8);
    let nsga = Nsga2Config {
        population: (budget / 3).clamp(6, 16),
        generations: 64,
        max_evals: budget,
        seed,
        ..Default::default()
    };
    let (nsga_rebuild, nsga_rebuild_ms) =
        timed_run(entry, &base, &analysis, &fw, EvalMode::Rebuild, Some(&nsga));
    let (nsga_overlay, nsga_overlay_ms) =
        timed_run(entry, &base, &analysis, &fw, EvalMode::Overlay, Some(&nsga));

    PruneEvalRow {
        circuit: entry.label(),
        grid_candidates: grid_rebuild.stats.evaluated,
        grid_rebuild_ms,
        grid_overlay_ms,
        nsga_candidates: nsga_rebuild.stats.evaluated,
        nsga_rebuild_ms,
        nsga_overlay_ms,
        identical: bit_identical(&grid_rebuild, &grid_overlay)
            && bit_identical(&nsga_rebuild, &nsga_overlay),
    }
}

/// The study's circuit selection: the paper's grid-sweep headline
/// (cardio svm-r, the acceptance row) plus a second family for breadth.
pub fn default_entries(cfg: &SynthConfig) -> Vec<Entry> {
    vec![
        train_entry(DatasetId::Cardio, ModelKind::SvmR, cfg),
        train_entry(DatasetId::RedWine, ModelKind::SvmC, cfg),
    ]
}

/// Runs the full study over the default circuits.
pub fn run(cfg: &SynthConfig, seed: u64) -> Vec<PruneEvalRow> {
    default_entries(cfg).iter().map(|e| run_entry(e, seed)).collect()
}

/// Markdown rendering of the comparison.
pub fn render(rows: &[PruneEvalRow]) -> String {
    let mut out = String::from(
        "| Circuit | Grid cands | Rebuild ms | Overlay ms | Speedup | Rebuild c/s | Overlay c/s | NSGA speedup | Identical |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|\n");
    for r in rows {
        let _ = writeln!(
            out,
            "| {} | {} | {:.0} | {:.0} | {:.2}× | {:.0} | {:.0} | {:.2}× | {} |",
            r.circuit,
            r.grid_candidates,
            r.grid_rebuild_ms,
            r.grid_overlay_ms,
            r.grid_speedup(),
            r.grid_rebuild_cps(),
            r.grid_overlay_cps(),
            r.nsga_speedup(),
            if r.identical { "yes" } else { "NO" },
        );
    }
    out
}

/// JSON rendering (the `BENCH_prune_eval.json` payload).
pub fn to_json(rows: &[PruneEvalRow], cfg: &SynthConfig, seed: u64) -> String {
    let mut out = String::from("{\n");
    out.push_str(
        "  \"benchmark\": \"rebuild vs overlay candidate evaluation (cargo run -p pax-bench --release --bin paper -- prune_eval)\",\n",
    );
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(
        out,
        "  \"synth_config\": {{ \"seed\": {}, \"size_factor\": {} }},",
        cfg.seed, cfg.size_factor
    );
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{ \"circuit\": \"{}\", \"grid_candidates\": {}, \"grid_rebuild_ms\": {:.1}, \"grid_overlay_ms\": {:.1}, \"grid_speedup\": {:.3}, \"grid_rebuild_cps\": {:.1}, \"grid_overlay_cps\": {:.1}, \"nsga_candidates\": {}, \"nsga_rebuild_ms\": {:.1}, \"nsga_overlay_ms\": {:.1}, \"nsga_speedup\": {:.3}, \"identical\": {} }}{}",
            r.circuit,
            r.grid_candidates,
            r.grid_rebuild_ms,
            r.grid_overlay_ms,
            r.grid_speedup(),
            r.grid_rebuild_cps(),
            r.grid_overlay_cps(),
            r.nsga_candidates,
            r.nsga_rebuild_ms,
            r.nsga_overlay_ms,
            r.nsga_speedup(),
            r.identical,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    out.push_str("  ],\n");
    let acceptance_row = rows.iter().find(|r| r.circuit.contains("cardio"));
    let pass = acceptance_row.is_some_and(|r| r.identical && r.grid_speedup() >= 3.0);
    out.push_str("  \"acceptance\": {\n");
    out.push_str(
        "    \"bar\": \"overlay >= 3x rebuild candidate-evaluation throughput on the cardio svm-r exhaustive grid, with bit-identical results\",\n",
    );
    let _ = writeln!(out, "    \"pass\": {pass}");
    out.push_str("  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_runs_and_modes_agree() {
        let cfg = SynthConfig { size_factor: 0.12, ..SynthConfig::small() };
        let entry = train_entry(DatasetId::RedWine, ModelKind::SvmR, &cfg);
        let row = run_entry(&entry, 11);
        assert!(row.grid_candidates > 0);
        assert!(row.identical, "overlay and rebuild diverged");
        assert!(row.grid_rebuild_ms > 0.0 && row.grid_overlay_ms > 0.0);
        let md = render(std::slice::from_ref(&row));
        assert!(md.contains("redwine"));
        let json = to_json(&[row], &cfg, 11);
        assert!(json.contains("\"acceptance\""));
        assert!(json.ends_with("}\n"));
    }
}
