//! Fig. 1: bespoke-multiplier area versus the coefficient value, for
//! 4-bit and 8-bit inputs (8-bit coefficients), with the conventional
//! multiplier as reference.

use std::fmt::Write as _;

use pax_core::mult_cache::MultCache;
use pax_netlist::NetlistBuilder;
use pax_synth::{area, conventional, opt};

/// One Fig. 1 panel: the per-coefficient bespoke areas plus the
/// conventional reference.
#[derive(Debug, Clone)]
pub struct Fig1Series {
    /// Input width in bits.
    pub in_bits: u32,
    /// `(w, area_mm2)` for every `w ∈ [−128, 127]`.
    pub points: Vec<(i64, f64)>,
    /// Area of the conventional (two-operand) multiplier of the same
    /// shape.
    pub conventional_mm2: f64,
}

/// Builds both panels (a: 4×8, b: 8×8).
pub fn build(cache: &MultCache) -> Vec<Fig1Series> {
    [4u32, 8].iter().map(|&in_bits| series(cache, in_bits, 8)).collect()
}

/// Builds one panel for an arbitrary input width.
pub fn series(cache: &MultCache, in_bits: u32, coef_bits: u32) -> Fig1Series {
    cache.build_range(in_bits, coef_bits);
    let lo = -(1i64 << (coef_bits - 1));
    let hi = (1i64 << (coef_bits - 1)) - 1;
    let points: Vec<(i64, f64)> = (lo..=hi).map(|w| (w, cache.area(in_bits, w))).collect();
    Fig1Series { in_bits, points, conventional_mm2: conventional_area(cache, in_bits, coef_bits) }
}

fn conventional_area(cache: &MultCache, in_bits: u32, coef_bits: u32) -> f64 {
    let mut b = NetlistBuilder::new("conv");
    let x = b.input_port("x", in_bits as usize);
    let w = b.input_port("w", coef_bits as usize);
    let p = conventional::mul_unsigned_signed(&mut b, &x, &w);
    b.output_port("p", p);
    let nl = opt::optimize(&b.finish());
    area::area_mm2(&nl, cache.library()).expect("library covers cells")
}

/// Renders both a CSV (`in_bits,w,area_mm2`) and a terminal summary.
pub fn to_csv(series: &[Fig1Series]) -> String {
    let mut out = String::from("in_bits,w,area_mm2\n");
    for s in series {
        for &(w, a) in &s.points {
            let _ = writeln!(out, "{},{},{:.4}", s.in_bits, w, a);
        }
    }
    out
}

/// Human-readable summary of a panel, mirroring the paper's narrative
/// (bespoke ≪ conventional, zero-area powers of two).
pub fn summarize(s: &Fig1Series) -> String {
    let max = s.points.iter().map(|p| p.1).fold(0.0, f64::max);
    let zero = s.points.iter().filter(|p| p.1 == 0.0).count();
    let mean = s.points.iter().map(|p| p.1).sum::<f64>() / s.points.len() as f64;
    format!(
        "x: {}-bit, w: 8-bit — bespoke mean {:.1} mm², max {:.1} mm², {} zero-area \
         coefficients; conventional {:.2} mm²",
        s.in_bits, mean, max, zero, s.conventional_mm2
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_match_paper_shape() {
        let cache = MultCache::new(egt_pdk::egt_library());
        let panels = build(&cache);
        assert_eq!(panels.len(), 2);
        for s in &panels {
            assert_eq!(s.points.len(), 256);
            // Every bespoke multiplier is smaller than the conventional.
            for &(w, a) in &s.points {
                assert!(a < s.conventional_mm2, "w={w} a={a}");
            }
            // Powers of two (and 0, 1) are free.
            for w in [0i64, 1, 2, 4, 8, 16, 32, 64] {
                let a = s.points.iter().find(|p| p.0 == w).unwrap().1;
                assert_eq!(a, 0.0, "w={w}");
            }
        }
        // 8-bit inputs cost more than 4-bit inputs for the same w.
        let a4: f64 = panels[0].points.iter().map(|p| p.1).sum();
        let a8: f64 = panels[1].points.iter().map(|p| p.1).sum();
        assert!(a8 > a4);
        let csv = to_csv(&panels);
        assert_eq!(csv.lines().count(), 1 + 512);
        assert!(summarize(&panels[0]).contains("conventional"));
    }
}
