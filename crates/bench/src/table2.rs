//! Table II: per circuit and per technique, the minimum-area design
//! losing less than 1% accuracy, with gains versus the baseline and the
//! printed-battery verdict.

use pax_core::report::{summarize_gains, table2_markdown, table2_row, GainSummary, Table2Row};

use crate::studies::StudyRun;
use crate::table1::tech_for;

/// The accuracy-loss budget of the paper's Table II.
pub const MAX_LOSS: f64 = 0.01;

/// Builds all Table II rows from completed studies.
pub fn build(runs: &[StudyRun]) -> Vec<Table2Row> {
    runs.iter()
        .map(|r| {
            let tech = tech_for(r.entry.dataset, r.entry.kind);
            table2_row(&r.study, MAX_LOSS, tech.battery_mw)
        })
        .collect()
}

/// Renders Table II plus the paper's headline averages.
pub fn render(rows: &[Table2Row]) -> String {
    let mut out = String::from("# Table II — area/power at <1% accuracy loss\n\n");
    out.push_str(&table2_markdown(rows));
    let g = summary(rows);
    out.push_str(&format!(
        "\naverages: cross-layer {:.0}%/{:.0}% area/power gain, \
         coeff-approx {:.0}%/{:.0}%, pruning-only {:.0}%/{:.0}%\n\
         (paper: 47%/44%, 28%/26%, 22%/20%)\n",
        g.cross_area, g.cross_power, g.coeff_area, g.coeff_power, g.prune_area, g.prune_power
    ));
    out
}

/// Average gains over the rows.
pub fn summary(rows: &[Table2Row]) -> GainSummary {
    summarize_gains(rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{train_entry, DatasetId};
    use crate::studies::run_one;
    use pax_ml::quant::ModelKind;
    use pax_ml::synth_data::SynthConfig;

    #[test]
    fn table2_row_from_real_study() {
        let cfg = SynthConfig::small();
        let entry = train_entry(DatasetId::RedWine, ModelKind::SvmR, &cfg);
        let run = run_one(entry);
        let rows = build(&[run]);
        assert_eq!(rows.len(), 1);
        // The cross-layer result can never be worse than pruning alone
        // or the coefficient approximation alone.
        assert!(rows[0].cross.area_gain_pct >= rows[0].coeff.area_gain_pct - 1e-9);
        assert!(rows[0].cross.area_gain_pct >= rows[0].prune.area_gain_pct - 1e-9);
        let text = render(&rows);
        assert!(text.contains("redwine svm-r"));
        assert!(text.contains("averages"));
    }
}
