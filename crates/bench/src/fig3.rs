//! Fig. 3: the accuracy-versus-normalized-area Pareto space of every
//! circuit, with the four technique series.

use std::fmt::Write as _;

use pax_core::report;
use pax_core::Technique;

use crate::studies::StudyRun;

/// CSV of one subplot (one circuit).
pub fn subplot_csv(run: &StudyRun) -> String {
    report::fig3_csv(&run.study)
}

/// CSV of all subplots concatenated with a `circuit` column prefix.
pub fn to_csv(runs: &[StudyRun]) -> String {
    let mut out =
        String::from("circuit,technique,tau_c,phi_c,coeff,accuracy,area_mm2,norm_area,power_mw\n");
    for run in runs {
        let label = run.entry.label();
        for line in report::fig3_csv(&run.study).lines().skip(1) {
            let _ = writeln!(out, "{label},{line}");
        }
    }
    out
}

/// Terminal summary per circuit: series sizes, Pareto composition and
/// the paper's headline claims (cross-layer dominates the front; the
/// coefficient approximation alone keeps accuracy).
pub fn summarize(runs: &[StudyRun]) -> String {
    let mut out = String::new();
    for run in runs {
        let s = &run.study;
        let front = s.pareto_front();
        let cross_on_front = front.iter().filter(|p| p.technique == Technique::Cross).count();
        let _ = writeln!(
            out,
            "{:22} base acc {:.3} area {:7.1} cm² | coeff: acc {:.3}, {:.0}% area | \
             {} pruned-only pts, {} cross pts | Pareto: {}/{} cross",
            run.entry.label(),
            s.baseline.accuracy,
            s.baseline.area_cm2(),
            s.coeff.accuracy,
            100.0 * (1.0 - s.coeff.norm_area(s.baseline.area_mm2)),
            s.prune_only.len(),
            s.cross.len(),
            cross_on_front,
            front.len(),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{train_entry, DatasetId};
    use crate::studies::run_one;
    use pax_ml::quant::ModelKind;
    use pax_ml::synth_data::SynthConfig;

    #[test]
    fn csv_and_summary_cover_the_run() {
        let cfg = SynthConfig::small();
        let run = run_one(train_entry(DatasetId::RedWine, ModelKind::SvmR, &cfg));
        let csv = to_csv(std::slice::from_ref(&run));
        assert!(csv.lines().count() > 3);
        assert!(csv.contains("redwine svm-r,exact"));
        assert!(csv.contains("cross-layer"));
        let sum = summarize(std::slice::from_ref(&run));
        assert!(sum.contains("Pareto"));
    }
}
