//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **CSD vs. plain binary recoding** of bespoke multipliers — how
//!    much of Fig. 1's area advantage comes from the signed-digit form;
//! 2. **re-synthesis after pruning** — how much of the pruning gain is
//!    constant propagation + dead-cone sweeping rather than the pruned
//!    gates themselves;
//! 3. **exhaustive error balancing vs. greedy** in the coefficient
//!    approximation.

use criterion::{criterion_group, criterion_main, Criterion};
use pax_bench::catalog::{train_entry, DatasetId};
use pax_core::coeff_approx::{approximate_model, CoeffApproxConfig};
use pax_core::mult_cache::MultCache;
use pax_core::prune::{analyze, enumerate_grid, PruneConfig};
use pax_ml::quant::ModelKind;
use pax_ml::synth_data::SynthConfig;
use pax_netlist::NetlistBuilder;
use pax_synth::{area, bits, constmul, opt};

fn csd_vs_binary(c: &mut Criterion) {
    let lib = egt_pdk::egt_library();
    let measure = |binary: bool| -> f64 {
        (-128i64..=127)
            .map(|w| {
                let mut b = NetlistBuilder::new("bm");
                let x = b.input_port("x", 4);
                let width = bits::product_width(4, w);
                let p = if binary {
                    constmul::bespoke_mul_binary(&mut b, &x, w, width)
                } else {
                    constmul::bespoke_mul(&mut b, &x, w, width)
                };
                b.output_port("p", p);
                area::area_mm2(&opt::optimize(&b.finish()), &lib).unwrap()
            })
            .sum()
    };
    let csd = measure(false);
    let binary = measure(true);
    println!(
        "# Ablation 1 — CSD recoding: total 4×8 multiplier area {:.0} mm² (CSD) vs {:.0} mm² \
         (binary): CSD saves {:.1}%",
        csd,
        binary,
        (binary - csd) / binary * 100.0
    );

    c.bench_function("ablation/csd_multiplier_sweep", |b| {
        b.iter(|| std::hint::black_box(measure(false)))
    });
}

fn resynthesis_gain(c: &mut Criterion) {
    let quick = SynthConfig { size_factor: 0.15, ..SynthConfig::default() };
    let entry = train_entry(DatasetId::RedWine, ModelKind::SvmC, &quick);
    let circuit = pax_bespoke::BespokeCircuit::generate(&entry.model);
    let netlist = opt::optimize(&circuit.netlist);
    let lib = egt_pdk::egt_library();
    let analysis = analyze(&netlist, &entry.model, &entry.train);
    let grid = enumerate_grid(&analysis, &PruneConfig::default());
    let set = grid.sets.iter().max_by_key(|s| s.len()).expect("non-empty grid");

    let base_area = area::area_mm2(&netlist, &lib).unwrap();
    // Without re-synthesis the gain is only the pruned gates themselves.
    let direct_gain: f64 = set
        .iter()
        .map(|&g| {
            let gate = netlist.gate(g).expect("candidates are gates");
            lib.cell(gate.kind.mnemonic()).map_or(0.0, |cell| cell.area_mm2)
        })
        .sum();
    let pruned = pax_core::prune::apply_set(&netlist, &analysis, set);
    let resynth_area = area::area_mm2(&pruned, &lib).unwrap();
    println!(
        "# Ablation 2 — re-synthesis after pruning ({} gates pruned): direct gate removal \
         would save {:.1}% of area; constant propagation + sweep deliver {:.1}%",
        set.len(),
        direct_gain / base_area * 100.0,
        (base_area - resynth_area) / base_area * 100.0
    );

    c.bench_function("ablation/prune_apply_and_resynth", |b| {
        b.iter(|| std::hint::black_box(pax_core::prune::apply_set(&netlist, &analysis, set)))
    });
}

fn balance_objectives(c: &mut Criterion) {
    let quick = SynthConfig { size_factor: 0.15, ..SynthConfig::default() };
    let entry = train_entry(DatasetId::Cardio, ModelKind::SvmC, &quick);
    let cache = MultCache::new(egt_pdk::egt_library());
    let exhaustive = CoeffApproxConfig::default();
    let greedy = CoeffApproxConfig { exhaustive_limit: 0, ..Default::default() };

    let (m_ex, r_ex) = approximate_model(&entry.model, &cache, &exhaustive);
    let (m_gr, r_gr) = approximate_model(&entry.model, &cache, &greedy);
    let acc = |m: &pax_ml::quant::QuantizedModel| m.accuracy_on(&entry.test);
    println!(
        "# Ablation 3 — balance search: exhaustive proxy -{:.1}% (accuracy {:.3}), greedy \
         proxy -{:.1}% (accuracy {:.3})",
        r_ex.proxy_reduction_pct(),
        acc(&m_ex),
        r_gr.proxy_reduction_pct(),
        acc(&m_gr)
    );

    c.bench_function("ablation/coeff_approx_exhaustive", |b| {
        b.iter(|| std::hint::black_box(approximate_model(&entry.model, &cache, &exhaustive)))
    });
    c.bench_function("ablation/coeff_approx_greedy", |b| {
        b.iter(|| std::hint::black_box(approximate_model(&entry.model, &cache, &greedy)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = csd_vs_binary, resynthesis_gain, balance_objectives
}
criterion_main!(benches);
