//! Table II bench: regenerates the <1%-loss table on a reduced dataset
//! (printed once), then measures one full cross-layer study.

use criterion::{criterion_group, criterion_main, Criterion};
use pax_bench::catalog::{train_entry, DatasetId};
use pax_bench::{studies, table2};
use pax_ml::quant::ModelKind;
use pax_ml::synth_data::SynthConfig;

fn bench(c: &mut Criterion) {
    let quick = SynthConfig { size_factor: 0.15, ..SynthConfig::default() };
    let runs = studies::run_all(&quick);
    println!("{}", table2::render(&table2::build(&runs)));

    let entry = train_entry(DatasetId::RedWine, ModelKind::SvmR, &quick);
    c.bench_function("table2/full_study_redwine_svm_r", |b| {
        b.iter(|| std::hint::black_box(studies::run_one(entry.clone())))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
