//! Fig. 1 bench: regenerates the bespoke-multiplier area curves
//! (printed once) and measures the per-coefficient synthesis sweep —
//! the paper's "step 1" (≤ 6 s on 12 DC licenses; here milliseconds).

use criterion::{criterion_group, criterion_main, Criterion};
use pax_bench::fig1;
use pax_core::mult_cache::MultCache;

fn bench(c: &mut Criterion) {
    let cache = MultCache::new(egt_pdk::egt_library());
    let panels = fig1::build(&cache);
    println!("# Fig. 1");
    for p in &panels {
        println!("{}", fig1::summarize(p));
    }

    c.bench_function("fig1/synthesize_all_4x8_multipliers", |b| {
        b.iter(|| {
            let fresh = MultCache::new(egt_pdk::egt_library());
            fresh.build_range(4, 8);
            std::hint::black_box(fresh.len())
        })
    });
    c.bench_function("fig1/cached_lookup", |b| b.iter(|| std::hint::black_box(cache.area(4, -77))));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
