//! Table I bench: regenerates the baseline-circuit table on a reduced
//! dataset once (printed to the bench log), then measures the cost of
//! producing one baseline row (train → quantize → circuit → measure).

use criterion::{criterion_group, criterion_main, Criterion};
use pax_bench::catalog::{train_entry, DatasetId};
use pax_bench::table1;
use pax_ml::quant::ModelKind;
use pax_ml::synth_data::SynthConfig;

fn bench(c: &mut Criterion) {
    let quick = SynthConfig { size_factor: 0.15, ..SynthConfig::default() };
    println!("{}", table1::render(&table1::build(&quick)));

    c.bench_function("table1/redwine_svm_r_row", |b| {
        b.iter(|| {
            let entry = train_entry(DatasetId::RedWine, ModelKind::SvmR, &quick);
            std::hint::black_box(table1::row_for(&entry));
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
