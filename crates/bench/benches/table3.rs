//! Table III bench: regenerates the execution-time table on a reduced
//! dataset (printed once), then measures the pruning exploration — the
//! dominant cost of the framework (the paper's bottleneck too).

use criterion::{criterion_group, criterion_main, Criterion};
use pax_bench::catalog::{train_entry, DatasetId};
use pax_bench::{studies, table3};
use pax_core::prune::{analyze, enumerate_grid, evaluate_grid, PruneConfig};
use pax_ml::quant::ModelKind;
use pax_ml::synth_data::SynthConfig;
use pax_synth::opt;

fn bench(c: &mut Criterion) {
    let quick = SynthConfig { size_factor: 0.15, ..SynthConfig::default() };
    let runs = studies::run_all(&quick);
    println!("{}", table3::render(&table3::build(&runs)));

    // Isolate the exploration kernel on a small circuit.
    let entry = train_entry(DatasetId::RedWine, ModelKind::SvmR, &quick);
    let circuit = pax_bespoke::BespokeCircuit::generate(&entry.model);
    let netlist = opt::optimize(&circuit.netlist);
    let lib = egt_pdk::egt_library();
    let tech = egt_pdk::TechParams::egt();
    let analysis = analyze(&netlist, &entry.model, &entry.train);
    c.bench_function("table3/prune_full_search_redwine_svm_r", |b| {
        b.iter(|| {
            let grid = enumerate_grid(&analysis, &PruneConfig::default());
            std::hint::black_box(evaluate_grid(
                &netlist,
                &entry.model,
                &entry.test,
                &lib,
                &tech,
                &analysis,
                &grid,
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
