//! Fig. 3 bench: regenerates the Pareto spaces on a reduced dataset
//! (printed once) and measures Pareto extraction plus CSV emission.

use criterion::{criterion_group, criterion_main, Criterion};
use pax_bench::catalog::{train_entry, DatasetId};
use pax_bench::{fig3, studies};
use pax_ml::quant::ModelKind;
use pax_ml::synth_data::SynthConfig;

fn bench(c: &mut Criterion) {
    let quick = SynthConfig { size_factor: 0.15, ..SynthConfig::default() };
    let runs = studies::run_all(&quick);
    println!("# Fig. 3\n{}", fig3::summarize(&runs));

    let entry = train_entry(DatasetId::RedWine, ModelKind::SvmC, &quick);
    let run = studies::run_one(entry);
    c.bench_function("fig3/pareto_front_extraction", |b| {
        b.iter(|| std::hint::black_box(run.study.pareto_front()))
    });
    c.bench_function("fig3/csv_emission", |b| {
        b.iter(|| std::hint::black_box(fig3::subplot_csv(&run)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
