//! §III-B bench: validates the area proxy (printed once, full 1000
//! weighted sums) and measures the per-sum proxy-vs-synthesis pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use pax_bench::proxy;
use pax_core::mult_cache::MultCache;

fn bench(c: &mut Criterion) {
    let cache = MultCache::new(egt_pdk::egt_library());
    let full = proxy::run(&cache, 1000, 0xC0FFEE);
    println!(
        "# Area-proxy validation: Pearson r = {:.3} over 1000 random weighted sums (paper: 0.91)",
        full.pearson_r
    );

    c.bench_function("proxy/100_random_weighted_sums", |b| {
        b.iter(|| std::hint::black_box(proxy::run(&cache, 100, 7)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
