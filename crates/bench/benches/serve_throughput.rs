//! Serving throughput: samples/sec through both `pax-serve` backends at
//! batch sizes {1, 8, 64, 256}, against the per-sample `eval_ports`
//! scalar baseline on the *same* netlist — the number the batcher
//! exists to beat. The acceptance bar is batched `NetlistBackend`
//! ≥ 10× the scalar loop; the summary table prints the measured ratio.
//!
//! A second comparison pits the interpreted `simulate` path against the
//! compiled tape (`CompiledNetlist`) on a study-sized stimulus, with
//! and without activity accounting. Acceptance bar: compiled with
//! activity disabled ≥ 3× interpreted. The measured numbers are
//! recorded in `BENCH_compiled_eval.json`.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pax_bespoke::{stimulus_for_rows, BespokeCircuit};
use pax_ml::model::LinearClassifier;
use pax_ml::quant::{QuantSpec, QuantizedModel};
use pax_netlist::{eval, Netlist};
use pax_serve::{Backend, EngineConfig, NetlistBackend, QuantBackend, ServeEngine};
use pax_sim::{simulate, CompiledNetlist};
use pax_synth::opt;

const BATCH_SIZES: [usize; 4] = [1, 8, 64, 256];
/// Samples per timed iteration — identical across variants so per-iter
/// times compare directly.
const SAMPLES_PER_ITER: usize = 256;
/// Stimulus size for the interpreter-vs-compiled comparison — the shape
/// of one study simulation (a full dataset), not one serving batch.
const STUDY_SAMPLES: usize = 4096;

/// A cardio-like workload: 5 features, 3 classes, deterministic
/// weights (no training inside a benchmark).
fn workload() -> (QuantizedModel, Netlist, Vec<Vec<i64>>) {
    let weights: Vec<Vec<f64>> = (0..3)
        .map(|k| (0..5).map(|i| (((k * 5 + i) as f64) * 0.739).sin() * 0.9).collect())
        .collect();
    let svc = LinearClassifier::new(weights, vec![0.02, -0.05, 0.1]);
    let model = QuantizedModel::from_linear_classifier("serve-bench", &svc, QuantSpec::default());
    let netlist = opt::optimize(&BespokeCircuit::generate(&model).netlist);
    let max = model.spec.input_max();
    let mut state = 0x5EEDu64;
    let rows: Vec<Vec<i64>> = (0..SAMPLES_PER_ITER)
        .map(|_| {
            (0..5)
                .map(|_| {
                    state =
                        state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    ((state >> 33) as i64) % (max + 1)
                })
                .collect()
        })
        .collect();
    (model, netlist, rows)
}

/// The pre-batching baseline: one scalar `eval_ports` walk per sample.
fn eval_ports_loop(netlist: &Netlist, rows: &[Vec<i64>]) -> usize {
    let port_names: Vec<String> = (0..rows[0].len()).map(|i| format!("x{i}")).collect();
    let mut agree = 0usize;
    for row in rows {
        let inputs: Vec<(&str, u64)> =
            port_names.iter().map(String::as_str).zip(row.iter().map(|&v| v as u64)).collect();
        let outs = eval::eval_ports(netlist, &inputs);
        agree += outs["class"] as usize;
    }
    agree
}

/// Mean seconds per execution of `f` over `reps` runs (after one
/// warm-up), for the printed samples/sec table.
fn time_it(mut f: impl FnMut(), reps: usize) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / reps as f64
}

fn bench(c: &mut Criterion) {
    let (model, netlist, rows) = workload();
    let nb = NetlistBackend::new(netlist.clone(), model.clone());
    let qb = QuantBackend::new(model.clone());

    // --- Headline comparison table -----------------------------------
    let reps = 20;
    let scalar_s = time_it(
        || {
            black_box(eval_ports_loop(&netlist, &rows));
        },
        reps,
    );
    let scalar_rate = SAMPLES_PER_ITER as f64 / scalar_s;
    println!("# serve_throughput — {SAMPLES_PER_ITER} samples/iteration, {reps} reps");
    println!("# {:<28} {:>14} {:>12}", "variant", "samples/sec", "vs scalar");
    println!("# {:<28} {:>14.0} {:>11.1}x", "eval_ports per-sample", scalar_rate, 1.0);
    for &batch in &BATCH_SIZES {
        let chunks: Vec<&[Vec<i64>]> = rows.chunks(batch).collect();
        let nb_s = time_it(
            || {
                for chunk in &chunks {
                    black_box(nb.try_classify(chunk).unwrap());
                }
            },
            reps,
        );
        let qb_s = time_it(
            || {
                for chunk in &chunks {
                    black_box(qb.try_classify(chunk).unwrap());
                }
            },
            reps,
        );
        let nb_rate = SAMPLES_PER_ITER as f64 / nb_s;
        let qb_rate = SAMPLES_PER_ITER as f64 / qb_s;
        println!(
            "# {:<28} {:>14.0} {:>11.1}x",
            format!("netlist batch={batch}"),
            nb_rate,
            nb_rate / scalar_rate
        );
        println!(
            "# {:<28} {:>14.0} {:>11.1}x",
            format!("quant   batch={batch}"),
            qb_rate,
            qb_rate / scalar_rate
        );
    }
    let full_batch_s = time_it(
        || {
            for chunk in rows.chunks(64) {
                black_box(nb.try_classify(chunk).unwrap());
            }
        },
        reps,
    );
    let ratio = scalar_s / full_batch_s;
    println!("# batched netlist (64) vs per-sample eval_ports: {ratio:.1}x (acceptance bar: 10x)");

    // --- Interpreter vs compiled evaluator ---------------------------
    // Study-sized stimulus: one pass over a whole dataset, the shape
    // the pruning search and accuracy sweeps execute thousands of times.
    // Per-call times here are microseconds, so many more reps fit —
    // needed for stable rates on noisy shared machines.
    let reps = 200;
    let study_rows: Vec<Vec<i64>> =
        (0..STUDY_SAMPLES).map(|i| rows[i % rows.len()].clone()).collect();
    let study_stim = stimulus_for_rows(&model, &study_rows);
    let compiled = CompiledNetlist::compile(&netlist);
    let compiled_seq = compiled.clone().with_threads(1);
    // Bit-identity self-check before any number is recorded: the fused
    // tape (`run`), the unfused activity-tracked tape
    // (`run_with_activity`) and the interpreter must agree on every
    // output port of the study stimulus.
    {
        let fused = compiled.run(&study_stim).unwrap();
        let tracked = compiled.run_with_activity(&study_stim).unwrap();
        let interp = simulate(&netlist, &study_stim);
        for p in netlist.output_ports() {
            assert_eq!(
                fused.port_values(&p.name),
                tracked.port_values(&p.name),
                "fused vs unfused tape diverge on {}",
                p.name
            );
            assert_eq!(
                fused.port_values(&p.name),
                interp.port_values(&p.name),
                "fused tape vs interpreter diverge on {}",
                p.name
            );
        }
        println!("# self-check: fused == unfused == interpreted on all output ports");
    }
    let interp_s = time_it(
        || {
            black_box(simulate(&netlist, &study_stim));
        },
        reps,
    );
    let compiled_act_s = time_it(
        || {
            black_box(compiled.run_with_activity(&study_stim).unwrap());
        },
        reps,
    );
    let compiled_seq_s = time_it(
        || {
            black_box(compiled_seq.run(&study_stim).unwrap());
        },
        reps,
    );
    let compiled_s = time_it(
        || {
            black_box(compiled.run(&study_stim).unwrap());
        },
        reps,
    );
    // The search and serving hot paths pack once per study/batch and
    // execute the fused tape many times (`run_masked`/`run_packed`), so
    // the pre-packed execution rate is the number the overlay wins ride
    // on; `run` above additionally pays per-call packing.
    let packed_narrow = compiled.pack(&study_stim).unwrap();
    let packed_wide = compiled.pack_wide(&study_stim).unwrap();
    let fused_narrow_s = time_it(
        || {
            black_box(compiled.run_packed(&packed_narrow));
        },
        reps,
    );
    let fused_wide_s = time_it(
        || {
            black_box(compiled.run_packed(&packed_wide));
        },
        reps,
    );
    let interp_rate = STUDY_SAMPLES as f64 / interp_s;
    println!("# interpreter vs compiled — {STUDY_SAMPLES} samples/iteration, {reps} reps");
    println!(
        "# fused tape: {} instructions ({} residual gates + {} LUT cones) vs {} unfused",
        compiled.n_fused_instructions(),
        compiled.n_fused_instructions() - compiled.n_luts(),
        compiled.n_luts(),
        compiled.n_instructions(),
    );
    println!("# {:<34} {:>14} {:>12}", "variant", "samples/sec", "vs interp");
    println!("# {:<34} {:>14.0} {:>11.1}x", "simulate (interpreted, activity)", interp_rate, 1.0);
    for (label, secs) in [
        ("compiled + activity", compiled_act_s),
        ("compiled, no activity, 1 thread", compiled_seq_s),
        ("compiled, no activity", compiled_s),
        ("fused pre-packed, 64-lane words", fused_narrow_s),
        ("fused pre-packed, 256-lane words", fused_wide_s),
    ] {
        let rate = STUDY_SAMPLES as f64 / secs;
        println!("# {:<34} {:>14.0} {:>11.1}x", label, rate, rate / interp_rate);
    }
    println!(
        "# compiled (no activity) vs interpreted simulate: {:.1}x (acceptance bar: 3x)",
        interp_s / compiled_s
    );
    println!(
        "# fused 256-lane vs 64-lane pre-packed execution: {:.1}x",
        fused_narrow_s / fused_wide_s
    );
    // Regression guard for the auto-thread planner: a study-sized
    // stimulus (64 u64 words on this netlist) is far below the
    // per-chunk work floor, so auto-threading must stay sequential —
    // BENCH_compiled_eval.json previously showed the threaded plan
    // losing to the pinned 1-thread run on exactly this shape.
    let study_words = STUDY_SAMPLES.div_ceil(64);
    assert_eq!(
        compiled.planned_threads(study_words),
        1,
        "study-sized workloads must plan a single thread"
    );

    // --- Criterion-tracked benchmarks --------------------------------
    for &batch in &BATCH_SIZES {
        let chunks: Vec<Vec<Vec<i64>>> = rows.chunks(batch).map(<[_]>::to_vec).collect();
        let nb = nb.clone();
        c.bench_function(&format!("serve/netlist/batch_{batch}"), move |b| {
            b.iter(|| {
                for chunk in &chunks {
                    black_box(nb.try_classify(chunk).unwrap());
                }
            })
        });
        let chunks: Vec<Vec<Vec<i64>>> = rows.chunks(batch).map(<[_]>::to_vec).collect();
        let qb = qb.clone();
        c.bench_function(&format!("serve/quant/batch_{batch}"), move |b| {
            b.iter(|| {
                for chunk in &chunks {
                    black_box(qb.try_classify(chunk).unwrap());
                }
            })
        });
    }
    {
        let netlist = netlist.clone();
        let rows = rows.clone();
        c.bench_function("serve/eval_ports_per_sample", move |b| {
            b.iter(|| black_box(eval_ports_loop(&netlist, &rows)))
        });
    }
    {
        let netlist = netlist.clone();
        let stim = study_stim.clone();
        c.bench_function("sim/interpreted_study", move |b| {
            b.iter(|| black_box(simulate(&netlist, &stim)))
        });
    }
    {
        let compiled = compiled.clone();
        let stim = study_stim.clone();
        c.bench_function("sim/compiled_activity_study", move |b| {
            b.iter(|| black_box(compiled.run_with_activity(&stim).unwrap()))
        });
    }
    {
        let compiled = compiled.clone();
        let stim = study_stim.clone();
        c.bench_function("sim/compiled_study", move |b| {
            b.iter(|| black_box(compiled.run(&stim).unwrap()))
        });
    }

    // End-to-end engine throughput: submit/ticket overhead, batcher,
    // worker pool and the default 5% audit included.
    {
        let engine = ServeEngine::new(EngineConfig::default());
        let point = pax_core::DesignPoint {
            technique: pax_core::Technique::Exact,
            tau_c: None,
            phi_c: None,
            coeff: None,
            accuracy: 1.0,
            area_mm2: 0.0,
            power_mw: 0.0,
            gate_count: netlist.gate_count(),
            critical_ms: 0.0,
        };
        engine
            .register(pax_core::artifact::Artifact {
                model: model.clone(),
                netlist: netlist.clone(),
                point,
            })
            .unwrap();
        let rows = rows.clone();
        c.bench_function("serve/engine_end_to_end_256", move |b| {
            b.iter(|| black_box(engine.classify("serve-bench", &rows).unwrap()))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
