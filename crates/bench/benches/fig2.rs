//! Fig. 2 bench: regenerates the area-reduction boxplots (printed once)
//! and measures one reduction-statistics sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use pax_bench::fig2;
use pax_core::mult_cache::MultCache;

fn bench(c: &mut Criterion) {
    let cache = MultCache::new(egt_pdk::egt_library());
    let panels = fig2::build(&cache);
    println!("# Fig. 2\n{}", fig2::summarize(&panels));

    c.bench_function("fig2/reduction_stats_4x8_e4", |b| {
        b.iter(|| std::hint::black_box(cache.reduction_stats(4, 8, 4)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
