//! Candidate evaluation: genome → pruned netlist → measured
//! [`DesignPoint`], deduplicated by content hash and parallel across a
//! worker pool.
//!
//! Every evaluation measures all four quality axes — accuracy, area,
//! power and critical-path delay — regardless of which
//! [`ObjectiveSet`](super::ObjectiveSet) the engine ranks by. That is
//! what makes objective spaces swappable after the fact: re-ranking
//! cached designs under a different axis selection
//! ([`Engine::set_objectives`](super::Engine::set_objectives)) costs
//! no fresh synthesis or simulation.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use egt_pdk::{Library, TechParams};
use pax_ml::quant::QuantizedModel;
use pax_ml::Dataset;
use pax_netlist::{NetId, Netlist};

use pax_obs::{Phases, PhasesSnapshot};

use super::fabric::{EvalFabric, FabricError};
use super::{Candidate, CoeffGene, ContextSpace, SearchSpace, MAX_COEFF_LAYERS};
use crate::coeff_approx::{approximate_model_layers, CoeffApproxConfig};
use crate::error::StudyError;
use crate::mult_cache::MultCache;
use crate::prune::{
    phase, DeltaFoldStats, DeltaSession, OverlayContext, PruneAnalysis, PruneConfig, PruneEval,
    EVAL_PHASES,
};
use crate::{DesignPoint, Technique};

/// How the evaluator measures a candidate.
///
/// [`EvalMode::Overlay`] (the default) evaluates prunings as masks on
/// the base circuit's shared compiled tape: no per-candidate
/// re-synthesis, recompilation or stimulus re-packing, timing re-timed
/// only in the affected cone. [`EvalMode::Rebuild`] keeps the legacy
/// pipeline — re-synthesize, recompile, re-simulate per candidate. The
/// two are bit-identical on every measured axis (the differential
/// suite pins it); `Rebuild` exists as that suite's oracle and as the
/// `pax-bench prune_eval` baseline.
///
/// [`EvalMode::Fabric`] is overlay evaluation *routed through an
/// external worker pool* ([`EvalFabric`]) instead of the evaluator's
/// private scoped threads: each fresh candidate ships as an owned batch
/// job (an `Arc`'d owned overlay context + the gate set) to — in
/// production — the `pax-serve` engine, which multiplexes it with live
/// inference traffic under per-study queues and budgets. Fabric results
/// are bit-identical to `Overlay` (same `OverlayContext::evaluate` code
/// path over clones of the same inputs; the fabric differential suite
/// pins it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvalMode {
    /// Prune-as-mask on the shared compiled tape (fast path, default).
    #[default]
    Overlay,
    /// Per-candidate re-synthesis + recompilation (legacy oracle).
    Rebuild,
    /// Overlay evaluation shipped to an attached [`EvalFabric`].
    Fabric,
}

/// One caller-provided base circuit a candidate can be pruned from —
/// e.g. the exact bespoke baseline ([`CoeffGene::exact`]) or a
/// pre-approximated circuit (conventionally [`CoeffGene::uniform`]`(1)`
/// in two-context setups) — with its pruning analysis computed once up
/// front. Further coefficient levels need no `EvalContext` at all:
/// [`Evaluator::with_coeff_axis`] materializes them lazily per gene.
#[derive(Debug)]
pub struct EvalContext<'a> {
    /// The coefficient gene selecting this context.
    pub coeff: CoeffGene,
    /// The (optimized) base netlist candidates prune.
    pub netlist: &'a Netlist,
    /// The model the netlist hardwires (the approximated model for
    /// non-exact contexts).
    pub model: &'a QuantizedModel,
    /// τ/φ metrics of the base netlist (training-set simulation).
    pub analysis: PruneAnalysis,
}

/// The graded coefficient-approximation axis: everything the evaluator
/// needs to materialize a base circuit for any [`CoeffGene`] on demand.
/// Attached via [`Evaluator::with_coeff_axis`], which enumerates one
/// lazy context per per-layer level combination.
#[derive(Debug)]
pub struct CoeffAxis<'a> {
    /// The *exact* base model every per-level approximation derives
    /// from.
    pub model: &'a QuantizedModel,
    /// Training set driving each materialized circuit's τ/φ analysis
    /// (the same set the caller analyzed its given contexts with).
    pub train: &'a Dataset,
    /// Shared bespoke-multiplier area cache (thread-safe; concurrent
    /// materializations share it).
    pub cache: &'a MultCache,
    /// Balance-search settings. The `e` field is ignored — the graded
    /// widths below rule.
    pub cfg: CoeffApproxConfig,
    /// Neighbourhood half-width of each graded level: `levels[k - 1]`
    /// is the `e` gene level `k` applies (level 0 is always exact).
    /// Must be non-empty, strictly positive and ascending.
    pub levels: Vec<i64>,
}

/// One base circuit materialized from the coefficient axis: the
/// per-layer-approximated model, its optimized bespoke netlist and the
/// pruning analysis — exactly what a caller-provided [`EvalContext`]
/// carries, but built inside the evaluator on first use.
#[derive(Debug)]
struct MaterializedBase {
    model: QuantizedModel,
    netlist: Netlist,
    analysis: PruneAnalysis,
}

/// One slot of the evaluator's context table.
#[derive(Debug)]
enum ContextSlot<'a> {
    /// Caller-provided (borrowed) base circuit.
    Given(EvalContext<'a>),
    /// Materialized from the [`CoeffAxis`] on first access; the
    /// `OnceLock` keeps concurrent workers from racing the synthesis.
    Lazy { gene: CoeffGene, cell: OnceLock<MaterializedBase> },
}

impl ContextSlot<'_> {
    fn gene(&self) -> CoeffGene {
        match self {
            ContextSlot::Given(c) => c.coeff,
            ContextSlot::Lazy { gene, .. } => *gene,
        }
    }
}

/// Memoized evaluations keyed by the 64-bit content hash of
/// `(context, sorted pruned-gate set)`: different `(τc, φc)` pairs — and
/// different strategies sharing one [`Engine`](super::Engine) — often
/// select the same gates, which are synthesized and simulated once.
/// Debug builds keep the full sets and assert on hash collisions.
///
/// Concurrency contract: the cache is only ever touched by the thread
/// driving [`Evaluator::evaluate_batch`] (it is `&mut` there). Workers
/// — the in-process pool and fabric jobs alike — never see it; they
/// return evaluations over a channel and the driving thread inserts
/// them. Hit/len accounting is therefore free of lost updates by
/// construction: duplicate keys inside one batch are collapsed *before*
/// any parallel work starts (`fresh` holds each key once), so two
/// workers can never race an insert of the same content hash, and
/// `hits`/`len` are deterministic for a deterministic candidate stream
/// regardless of worker count or evaluation mode — the repeated-run
/// equality suite asserts exactly that.
#[derive(Debug, Default)]
pub struct EvalCache {
    map: HashMap<u64, PruneEval>,
    #[cfg(debug_assertions)]
    shadow: HashMap<u64, (usize, Vec<NetId>)>,
    hits: usize,
}

impl EvalCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of evaluations served from the cache.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Number of distinct evaluations stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// A plain lookup. Hit accounting happens in the dedup walk of
    /// [`Evaluator::evaluate_batch`] — the one place that knows whether
    /// a key was already paid for — not here, so that post-evaluation
    /// result assembly cannot skew the counters.
    fn get(&self, key: u64) -> Option<&PruneEval> {
        self.map.get(&key)
    }

    #[cfg(debug_assertions)]
    fn check_collision(&mut self, key: u64, ctx: usize, set: &[NetId]) {
        match self.shadow.get(&key) {
            Some(seen) => debug_assert!(
                seen.0 == ctx && seen.1 == set,
                "evaluation-cache hash collision on key {key:#x}"
            ),
            None => {
                self.shadow.insert(key, (ctx, set.to_vec()));
            }
        }
    }
}

/// Maps [`Candidate`] genomes to measured [`DesignPoint`]s over N
/// gene-keyed base circuits — caller-provided ([`EvalContext`]) or
/// lazily materialized from a [`CoeffAxis`] — evaluating distinct
/// prunings in parallel and memoizing them in an [`EvalCache`].
#[derive(Debug)]
pub struct Evaluator<'a> {
    lib: &'a Library,
    tech: &'a TechParams,
    test: &'a Dataset,
    contexts: Vec<ContextSlot<'a>>,
    /// The graded coefficient axis backing the lazy slots; `None` for
    /// purely caller-provided evaluators.
    axis: Option<CoeffAxis<'a>>,
    /// One shared overlay (tape + packed stimulus + cell/delay tables +
    /// base timing) per context, built lazily on the first overlay-mode
    /// evaluation — an evaluator pinned to [`EvalMode::Rebuild`] (the
    /// benchmark baseline) never pays for overlay setup. Construction
    /// failures (library gaps, malformed stimuli) surface per
    /// evaluation, mirroring the rebuild path's timing.
    overlays: Vec<OnceLock<Result<OverlayContext<'a>, StudyError>>>,
    /// The external pool candidate evaluation rides in
    /// [`EvalMode::Fabric`]; `None` until [`Evaluator::with_fabric`].
    fabric: Option<Arc<dyn EvalFabric>>,
    /// One *owned* (`'static`) overlay per context for fabric jobs,
    /// separate from `overlays`: jobs run on worker threads that
    /// outlive `'a`, so they cannot borrow the study's inputs. Built
    /// lazily on the first fabric-mode evaluation that touches the
    /// context, then shared by every job through the `Arc`.
    fabric_contexts: Vec<OnceLock<Result<Arc<FabricContext>, StudyError>>>,
    mode: EvalMode,
    /// Whether overlay-mode workers evaluate through rolling
    /// [`DeltaSession`]s over lattice-ordered work (the default) or
    /// fold every candidate from scratch ([`Evaluator::with_delta`]).
    delta: bool,
    threads: usize,
    /// Evaluator-side phase accounting (the `resolve` slot; the
    /// per-candidate measurement phases accumulate inside each
    /// context's overlay and merge in [`Evaluator::telemetry`]).
    phases: Phases,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator over the given base circuits. `contexts`
    /// must be non-empty and hold at most one context per coefficient
    /// gene.
    pub fn new(
        lib: &'a Library,
        tech: &'a TechParams,
        test: &'a Dataset,
        contexts: Vec<EvalContext<'a>>,
    ) -> Self {
        assert!(!contexts.is_empty(), "evaluator needs at least one base circuit");
        for i in 1..contexts.len() {
            assert!(
                contexts[..i].iter().all(|c| c.coeff != contexts[i].coeff),
                "one context per coefficient gene"
            );
        }
        let overlays = contexts.iter().map(|_| OnceLock::new()).collect();
        let fabric_contexts = contexts.iter().map(|_| OnceLock::new()).collect();
        let threads = std::thread::available_parallelism().map_or(4, |t| t.get()).min(16);
        Self {
            lib,
            tech,
            test,
            contexts: contexts.into_iter().map(ContextSlot::Given).collect(),
            axis: None,
            overlays,
            fabric: None,
            fabric_contexts,
            mode: EvalMode::default(),
            delta: true,
            threads,
            phases: Phases::new(EVAL_PHASES),
        }
    }

    /// Opens the graded coefficient-approximation axis: one lazy
    /// context per per-layer level combination of `axis.levels` (for a
    /// two-layer model, the full `(level₀, level₁)` cross product; for
    /// a single-layer model, one context per level). Gene combinations
    /// a caller-provided context already covers are skipped, so the
    /// conventional exact [`EvalContext`] keeps serving the
    /// [`CoeffGene::exact`] corner. Each lazy context synthesizes and
    /// analyzes its base circuit only when a candidate (or the search
    /// space) first touches it; its shared overlay tape is built even
    /// later, on the first overlay-mode evaluation.
    #[must_use]
    pub fn with_coeff_axis(mut self, axis: CoeffAxis<'a>) -> Self {
        assert!(!axis.levels.is_empty(), "coeff axis needs at least one graded level");
        assert!(
            axis.levels.iter().all(|&e| e > 0),
            "graded levels are positive widths (level 0 is always exact)"
        );
        assert!(axis.levels.windows(2).all(|w| w[0] < w[1]), "graded levels must ascend");
        assert!(axis.levels.len() <= usize::from(u8::MAX), "too many graded levels");
        let per_layer = axis.levels.len() as u8;
        let layers =
            axis.model.sum_shapes().iter().map(|&(layer, _, _)| layer + 1).max().unwrap_or(1);
        let mut genes = Vec::new();
        for l0 in 0..=per_layer {
            if layers >= 2 {
                for l1 in 0..=per_layer {
                    genes.push(CoeffGene::per_layer(&[l0, l1]));
                }
            } else {
                genes.push(CoeffGene::per_layer(&[l0]));
            }
        }
        for gene in genes {
            if self.contexts.iter().any(|c| c.gene() == gene) {
                continue;
            }
            self.contexts.push(ContextSlot::Lazy { gene, cell: OnceLock::new() });
            self.overlays.push(OnceLock::new());
            self.fabric_contexts.push(OnceLock::new());
        }
        self.axis = Some(axis);
        self
    }

    /// Merged per-phase telemetry: the evaluator's own `resolve`
    /// accounting plus every built overlay's fold/masked-sim/score/
    /// re-time totals. Rebuild-mode evaluations time nothing beyond
    /// `resolve` (the legacy oracle stays untouched). Pair two
    /// snapshots with [`PhasesSnapshot::since`] for per-run deltas —
    /// the [`Engine`](super::Engine) does exactly that.
    pub fn telemetry(&self) -> PhasesSnapshot {
        let merged = Phases::new(EVAL_PHASES);
        merged.merge(&self.phases);
        for overlay in &self.overlays {
            if let Some(Ok(ctx)) = overlay.get() {
                merged.merge(ctx.phases());
            }
        }
        for fabric_ctx in &self.fabric_contexts {
            if let Some(Ok(ctx)) = fabric_ctx.get() {
                merged.merge(ctx.overlay.phases());
            }
        }
        merged.snapshot()
    }

    /// The shared overlay for context `ctx_idx`, built on first use
    /// (`OnceLock` keeps concurrent workers from racing the setup).
    /// Given contexts borrow their base circuit; lazy contexts hand the
    /// overlay an owned clone of the materialized one (the evaluator
    /// keeps the original for gate-set resolution and the rebuild
    /// oracle).
    fn overlay(&self, ctx_idx: usize) -> &Result<OverlayContext<'a>, StudyError> {
        self.overlays[ctx_idx].get_or_init(|| match &self.contexts[ctx_idx] {
            ContextSlot::Given(ctx) => {
                OverlayContext::new(ctx.netlist, ctx.model, self.test, self.lib, self.tech)
            }
            ContextSlot::Lazy { .. } => {
                let (netlist, model, _) = self.parts(ctx_idx);
                OverlayContext::new_owned(
                    netlist.clone(),
                    model.clone(),
                    self.test,
                    self.lib,
                    self.tech,
                )
            }
        })
    }

    /// The owned fabric overlay for context `ctx_idx`, built on first
    /// use from clones of the same inputs [`Evaluator::overlay`] uses.
    /// `OverlayContext` construction is deterministic (compile the
    /// tape, pack the stimulus, analyze base timing — no ordering or
    /// randomness), so evaluating a gate set here is bit-identical to
    /// evaluating it on the borrowed overlay; the fabric differential
    /// suite pins that.
    fn fabric_context(&self, ctx_idx: usize) -> Result<&Arc<FabricContext>, StudyError> {
        self.fabric_contexts[ctx_idx]
            .get_or_init(|| {
                let (netlist, model, analysis) = self.parts(ctx_idx);
                OverlayContext::new_static(
                    netlist.clone(),
                    model.clone(),
                    self.test.clone(),
                    self.lib,
                    self.tech.clone(),
                )
                .map(|overlay| Arc::new(FabricContext { overlay, analysis: analysis.clone() }))
            })
            .as_ref()
            .map_err(Clone::clone)
    }

    /// `(netlist, model, analysis)` of context `ctx_idx`, materializing
    /// a lazy context on first access.
    fn parts(&self, ctx_idx: usize) -> (&Netlist, &QuantizedModel, &PruneAnalysis) {
        match &self.contexts[ctx_idx] {
            ContextSlot::Given(c) => (c.netlist, c.model, &c.analysis),
            ContextSlot::Lazy { gene, cell } => {
                let m = cell.get_or_init(|| self.materialize(*gene));
                (&m.netlist, &m.model, &m.analysis)
            }
        }
    }

    /// Builds the base circuit of `gene` from the coefficient axis:
    /// per-layer `±e` approximation, bespoke synthesis + optimization,
    /// τ/φ analysis — the same pipeline callers run for their given
    /// contexts, which is what keeps the lazy path bit-identical to
    /// handing the circuit in up front.
    fn materialize(&self, gene: CoeffGene) -> MaterializedBase {
        let axis = self.axis.as_ref().expect("lazy contexts always carry a coeff axis");
        let widths: Vec<i64> = (0..MAX_COEFF_LAYERS)
            .map(|layer| match gene.level(layer) {
                0 => 0,
                level => axis.levels[usize::from(level) - 1],
            })
            .collect();
        let (model, _) = approximate_model_layers(axis.model, axis.cache, &axis.cfg, &widths);
        let netlist =
            pax_synth::opt::optimize(&pax_bespoke::BespokeCircuit::generate(&model).netlist);
        let analysis = crate::prune::analyze(&netlist, &model, axis.train);
        MaterializedBase { model, netlist, analysis }
    }

    /// Selects how candidates are measured (overlay by default). See
    /// [`EvalMode`].
    #[must_use]
    pub fn with_mode(mut self, mode: EvalMode) -> Self {
        self.mode = mode;
        self
    }

    /// Attaches an external worker pool and switches to
    /// [`EvalMode::Fabric`]: every fresh evaluation ships to `fabric`
    /// as an owned job instead of running on the evaluator's private
    /// scoped threads. In production the fabric is a `pax-serve` tenant
    /// handle, which multiplexes study evaluations with live inference
    /// traffic under that study's queue, budget and metrics.
    #[must_use]
    pub fn with_fabric(mut self, fabric: Arc<dyn EvalFabric>) -> Self {
        self.fabric = Some(fabric);
        self.mode = EvalMode::Fabric;
        self
    }

    /// Pins the worker-pool width (defaults to the machine's available
    /// parallelism, capped at 16). Benchmarks pin this so delta and
    /// baseline paths are compared at one thread count; zero is
    /// clamped to one.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables or disables delta evaluation in overlay mode (on by
    /// default). With delta on, fresh work is sorted along the gate-set
    /// lattice and each worker evaluates through a rolling
    /// [`DeltaSession`], so consecutive candidates reuse the previous
    /// fold and simulation instead of starting over. With delta off,
    /// every candidate folds and simulates from scratch — the PR 9
    /// baseline, kept as the benchmark reference and differential
    /// oracle. Results are bit-identical either way.
    #[must_use]
    pub fn with_delta(mut self, delta: bool) -> Self {
        self.delta = delta;
        self
    }

    /// The active evaluation mode.
    pub fn mode(&self) -> EvalMode {
        self.mode
    }

    /// Cumulative delta/full fold counters summed over every built
    /// overlay (fabric contexts included). The split depends on how
    /// workers chunked the batch, so it is telemetry — never part of
    /// determinism comparisons.
    pub fn delta_stats(&self) -> DeltaFoldStats {
        let mut stats = DeltaFoldStats::default();
        for overlay in &self.overlays {
            if let Some(Ok(ctx)) = overlay.get() {
                stats.merge(&ctx.delta_stats());
            }
        }
        for fabric_ctx in &self.fabric_contexts {
            if let Some(Ok(ctx)) = fabric_ctx.get() {
                stats.merge(&ctx.overlay.delta_stats());
            }
        }
        stats
    }

    /// The searchable space: τc bounds from the pruning configuration
    /// plus each context's per-gate (τ, φ) metrics, which strategies
    /// use to enumerate or sample thresholds. Strategies need every
    /// context's gate metrics to search it, so this materializes any
    /// still-lazy coefficient contexts (their overlay tapes stay lazy —
    /// those are only built when an overlay-mode evaluation lands).
    pub fn space(&self, cfg: &PruneConfig) -> SearchSpace {
        SearchSpace {
            tau_values: cfg.tau_values(),
            contexts: (0..self.contexts.len())
                .map(|i| {
                    let (_, _, analysis) = self.parts(i);
                    ContextSpace {
                        gene: self.contexts[i].gene(),
                        gates: analysis
                            .candidates
                            .iter()
                            .map(|&g| (analysis.tau_of(g), analysis.phi_of(g)))
                            .collect(),
                    }
                })
                .collect(),
        }
    }

    /// The coefficient genes the evaluator can serve, in context order.
    pub fn genes(&self) -> Vec<CoeffGene> {
        self.contexts.iter().map(ContextSlot::gene).collect()
    }

    fn context_index(&self, gene: CoeffGene) -> Result<usize, StudyError> {
        self.contexts
            .iter()
            .position(|c| c.gene() == gene)
            .ok_or(StudyError::MissingContext { gene })
    }

    /// The sorted pruned-gate set a candidate selects (the paper's
    /// step-3 filter: τ-qualified gates whose φ is at most φc).
    pub fn gate_set(&self, c: &Candidate) -> Result<Vec<NetId>, StudyError> {
        let (_, _, a) = self.parts(self.context_index(c.coeff)?);
        let mut set: Vec<NetId> = a
            .candidates
            .iter()
            .copied()
            .filter(|&g| a.tau_of(g) >= c.tau_c - 1e-12 && a.phi_of(g) <= c.phi_c)
            .collect();
        set.sort_unstable();
        Ok(set)
    }

    /// Evaluates a batch of candidates, measuring each distinct
    /// `(context, gate set)` at most once (across the whole lifetime of
    /// `cache`) and in parallel. When `max_new_evals` is given, the
    /// batch is truncated to the longest prefix needing at most that
    /// many fresh evaluations — the engine's budget enforcement.
    ///
    /// Returns the evaluated `(candidate, point)` prefix and the number
    /// of fresh (non-cached) evaluations it cost.
    pub fn evaluate_batch(
        &self,
        batch: &[Candidate],
        cache: &mut EvalCache,
        max_new_evals: Option<usize>,
    ) -> Result<(Vec<(Candidate, DesignPoint)>, usize), StudyError> {
        // Resolve genomes to hashed gate sets, collecting the fresh
        // work while honouring the budget. The per-genome resolution
        // (τ/φ filter over every prunable gate + content hash) is
        // independent work, so large batches — the exhaustive grid asks
        // for thousands of combos at once — resolve across the worker
        // pool first; the dedup/budget walk below stays sequential
        // (its prefix semantics are order-dependent).
        let resolved = self.phases.time(phase::RESOLVE, || self.resolve_sets(batch))?;
        let mut keys = Vec::with_capacity(batch.len());
        let mut fresh: Vec<(u64, usize, Vec<NetId>)> = Vec::new();
        let mut fresh_keys: HashMap<u64, usize> = HashMap::new();
        let budget = max_new_evals.unwrap_or(usize::MAX);
        for (ctx, set) in resolved {
            let key = context_set_hash(ctx, &set);
            #[cfg(debug_assertions)]
            cache.check_collision(key, ctx, &set);
            if cache.map.contains_key(&key) || fresh_keys.contains_key(&key) {
                // Already stored, or a duplicate of fresh work earlier
                // in this batch — either way the evaluation is shared.
                cache.hits += 1;
                keys.push(key);
                continue;
            }
            if fresh.len() >= budget {
                break; // budget exhausted: evaluate the prefix only
            }
            fresh_keys.insert(key, fresh.len());
            fresh.push((key, ctx, set));
            keys.push(key);
        }
        let new_evals = fresh.len();
        for (key, eval) in self.run_parallel(&fresh)? {
            cache.map.insert(key, eval);
        }
        let results = batch[..keys.len()]
            .iter()
            .zip(&keys)
            .map(|(c, key)| {
                let e = cache.get(*key).expect("every batch key evaluated");
                (*c, self.point_for(c, e))
            })
            .collect();
        Ok((results, new_evals))
    }

    /// Resolves every genome's `(context index, sorted gate set)` —
    /// across the worker pool when the batch is large enough to
    /// amortize the spawns, sequentially otherwise. Resolution is pure,
    /// so parallelism cannot change the result.
    fn resolve_sets(&self, batch: &[Candidate]) -> Result<Vec<ResolvedSet>, StudyError> {
        /// Below this batch size thread spawns cost more than they save.
        const MIN_PARALLEL_BATCH: usize = 64;
        if batch.len() < MIN_PARALLEL_BATCH || self.threads <= 1 {
            return batch
                .iter()
                .map(|c| Ok((self.context_index(c.coeff)?, self.gate_set(c)?)))
                .collect();
        }
        let threads = self.threads.min(batch.len());
        let per = batch.len().div_ceil(threads);
        let chunks: Vec<Result<Vec<ResolvedSet>, StudyError>> = std::thread::scope(|s| {
            let handles: Vec<_> = batch
                .chunks(per)
                .map(|chunk| {
                    s.spawn(move || {
                        chunk
                            .iter()
                            .map(|c| Ok((self.context_index(c.coeff)?, self.gate_set(c)?)))
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("resolver worker")).collect()
        });
        let mut resolved = Vec::with_capacity(batch.len());
        for chunk in chunks {
            resolved.extend(chunk?);
        }
        Ok(resolved)
    }

    /// Runs the fresh evaluations over a work-stealing worker pool
    /// (set sizes — and thus re-synthesis costs — vary wildly, so
    /// static chunking would leave threads idle). In overlay mode with
    /// delta evaluation on, the work is first sorted along the gate-set
    /// lattice — by context, then lexicographically by sorted gate set:
    /// the order a DFS of the set prefix trie visits, so adjacent items
    /// share long substitution prefixes — and stolen in small
    /// contiguous chunks that each worker's rolling [`DeltaSession`]
    /// evaluates in sequence. Results are keyed, so the reordering
    /// cannot change the assembled batch.
    fn run_parallel(
        &self,
        fresh: &[(u64, usize, Vec<NetId>)],
    ) -> Result<Vec<(u64, PruneEval)>, StudyError> {
        if fresh.is_empty() {
            return Ok(Vec::new());
        }
        if self.mode == EvalMode::Fabric {
            return self.run_fabric(fresh);
        }
        let use_delta = self.delta && self.mode == EvalMode::Overlay;
        let mut order: Vec<usize> = (0..fresh.len()).collect();
        let chunk = if use_delta {
            order.sort_unstable_by(|&x, &y| {
                (fresh[x].1, &fresh[x].2).cmp(&(fresh[y].1, &fresh[y].2))
            });
            // Contiguous chunks big enough that a session amortizes
            // across lattice neighbours, small enough that the pool
            // stays balanced on modest batches.
            (fresh.len() / (self.threads * 4)).clamp(1, 32)
        } else {
            1
        };
        let n_chunks = order.len().div_ceil(chunk);
        let next = std::sync::atomic::AtomicUsize::new(0);
        // First error aborts the whole batch: without the shared flag,
        // the other workers would drain every remaining (expensive)
        // evaluation before the error could propagate.
        let abort = std::sync::atomic::AtomicBool::new(false);
        let threads = self.threads.min(n_chunks);
        let (tx, rx) = std::sync::mpsc::channel::<Result<(u64, PruneEval), StudyError>>();
        std::thread::scope(|s| {
            for _ in 0..threads {
                let next = &next;
                let abort = &abort;
                let order = &order;
                let tx = tx.clone();
                s.spawn(move || {
                    // context → rolling session, most recent first.
                    let mut sessions: Vec<(usize, DeltaSession)> = Vec::new();
                    'steal: loop {
                        let c = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if c >= n_chunks || abort.load(std::sync::atomic::Ordering::Relaxed) {
                            break;
                        }
                        for &i in &order[c * chunk..((c + 1) * chunk).min(order.len())] {
                            if abort.load(std::sync::atomic::Ordering::Relaxed) {
                                break 'steal;
                            }
                            let (key, ctx_idx, set) = &fresh[i];
                            let (netlist, model, analysis) = self.parts(*ctx_idx);
                            let r = match self.mode {
                                EvalMode::Overlay => match self.overlay(*ctx_idx) {
                                    Ok(overlay) if use_delta => {
                                        let session = session_for(&mut sessions, *ctx_idx, overlay);
                                        overlay.evaluate_with_session(analysis, set, session)
                                    }
                                    Ok(overlay) => overlay.evaluate(analysis, set),
                                    Err(e) => Err(e.clone()),
                                },
                                EvalMode::Rebuild => crate::prune::try_evaluate_set_rebuild(
                                    netlist, model, self.test, self.lib, self.tech, analysis, set,
                                ),
                                EvalMode::Fabric => {
                                    unreachable!("fabric batches run in run_fabric")
                                }
                            };
                            let stop = r.is_err();
                            if stop {
                                abort.store(true, std::sync::atomic::Ordering::Relaxed);
                            }
                            tx.send(r.map(|e| (*key, e))).expect("receiver outlives workers");
                            if stop {
                                break 'steal;
                            }
                        }
                    }
                });
            }
            drop(tx);
            rx.iter().collect()
        })
    }

    /// Ships the fresh evaluations to the attached [`EvalFabric`] as
    /// owned jobs — one per distinct `(context, gate set)` — and
    /// collects their results over a channel. A job dropped unrun (its
    /// tenant unregistered, or the pool torn down mid-batch) never
    /// sends, so the channel closes short and the batch fails with
    /// [`FabricError::Cancelled`] instead of hanging.
    fn run_fabric(
        &self,
        fresh: &[(u64, usize, Vec<NetId>)],
    ) -> Result<Vec<(u64, PruneEval)>, StudyError> {
        let fabric = self.fabric.as_ref().ok_or(StudyError::Fabric(FabricError::NotAttached))?;
        let (tx, rx) = std::sync::mpsc::channel::<Result<(u64, PruneEval), StudyError>>();
        for (key, ctx_idx, set) in fresh {
            let shared = Arc::clone(self.fabric_context(*ctx_idx)?);
            let (key, set, tx) = (*key, set.clone(), tx.clone());
            let job = Box::new(move || {
                let r = shared.overlay.evaluate(&shared.analysis, &set).map(|e| (key, e));
                // The receiver is gone when the driving thread already
                // bailed on an earlier error; nothing left to report.
                let _ = tx.send(r);
            });
            fabric.submit(job).map_err(StudyError::Fabric)?;
        }
        drop(tx);
        let mut out = Vec::with_capacity(fresh.len());
        for r in rx {
            out.push(r?);
        }
        if out.len() < fresh.len() {
            return Err(StudyError::Fabric(FabricError::Cancelled));
        }
        Ok(out)
    }

    fn point_for(&self, c: &Candidate, e: &PruneEval) -> DesignPoint {
        DesignPoint {
            technique: if c.coeff.is_exact() { Technique::PruneOnly } else { Technique::Cross },
            tau_c: Some(c.tau_c),
            phi_c: Some(c.phi_c),
            coeff: (!c.coeff.is_exact()).then_some(c.coeff),
            accuracy: e.accuracy,
            area_mm2: e.area_mm2,
            power_mw: e.power_mw,
            gate_count: e.gate_count,
            critical_ms: e.critical_ms,
        }
    }
}

/// The owned evaluation state one context ships to fabric workers: a
/// `'static` overlay (owned clones of the base netlist, model, test
/// set and technology parameters) plus the pruning analysis the τ/φ
/// mask resolution reads. Everything a job touches lives behind one
/// `Arc`, so jobs are `'static` and the pool can run them on threads
/// that outlive the study's stack frame.
#[derive(Debug)]
struct FabricContext {
    overlay: OverlayContext<'static>,
    analysis: PruneAnalysis,
}

/// One resolved genome: `(context index, sorted pruned-gate set)`.
type ResolvedSet = (usize, Vec<NetId>);

/// The worker's rolling session for `ctx_idx`, moved to the front of a
/// two-slot LRU — created fresh from `overlay` on a miss, evicting the
/// colder slot. Two slots suffice: the lattice sort keeps each chunk
/// within one context, so a worker interleaves at most the chunk
/// boundary's pair.
fn session_for<'s>(
    sessions: &'s mut Vec<(usize, DeltaSession)>,
    ctx_idx: usize,
    overlay: &OverlayContext<'_>,
) -> &'s mut DeltaSession {
    if let Some(p) = sessions.iter().position(|(c, _)| *c == ctx_idx) {
        let hot = sessions.remove(p);
        sessions.insert(0, hot);
    } else {
        sessions.insert(0, (ctx_idx, overlay.delta_session()));
        sessions.truncate(2);
    }
    &mut sessions[0].1
}

/// Cache key: the gate-set content hash salted with the context index.
fn context_set_hash(ctx: usize, set: &[NetId]) -> u64 {
    crate::prune::gate_set_hash(set) ^ (ctx as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93)
}
