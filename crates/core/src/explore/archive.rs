//! Incremental Pareto archive over a configurable [`ObjectiveSet`].
//!
//! [`pareto::pareto_front`](crate::pareto::pareto_front) recomputes the
//! front from scratch — fine once per study, wasteful inside a search
//! loop that adds designs one at a time. [`ParetoArchive`] maintains the
//! front under insertion: each insert either bounces off a dominating
//! incumbent or enters and evicts everything it dominates. Two-axis
//! sets keep the original sorted representation (`O(log n + k)` per
//! insert — binary search plus the evicted range); other
//! dimensionalities use a linear dominance scan, which for the front
//! sizes this search produces is equally cheap. The archive always
//! equals the batch front over every point ever inserted (first
//! occurrence kept on exact metric ties), which the `proptest_explore`
//! suite asserts against random point clouds in 2–4 dimensions.
//!
//! The front's quality collapses to one scalar through the dominated
//! [`hypervolume`](ParetoArchive::hypervolume): the exact 2-D sweep is
//! preserved bit-for-bit (golden-pinned by `integration_explore`), and
//! N-D sets use the exact WFG recursive-slicing algorithm. Reference
//! points are given in *raw axis units* in enabled-axis order — see the
//! README's reference-point guidance.
//!
//! Hypervolume is maintained **incrementally**: the archive caches the
//! per-point contribution terms of the last query (keyed by the
//! reference point's bit pattern) and, on the next query, recomputes
//! only the terms the front's change touched — in 2-D a term couples a
//! point to its sweep predecessor, so an insert dirties at most the
//! spliced range plus one neighbour; in N-D a WFG exclusive
//! contribution depends on the point and everything sorted after it,
//! so the unchanged common suffix carries over. The final value is
//! always a forward re-sum over *all* terms (float addition is not
//! associative), which makes the cached result bit-for-bit equal to
//! [`ParetoArchive::batch_hypervolume`] — the cache-bypassing oracle
//! the incremental-vs-batch property suite compares against. Querying
//! with a different reference point recomputes from scratch and
//! re-keys the cache.

use std::sync::Mutex;

use super::objective::ObjectiveSet;
use crate::DesignPoint;

/// Why a hypervolume could not be computed.
#[derive(Debug, Clone, PartialEq)]
pub enum HypervolumeError {
    /// The reference point's component count does not match the
    /// archive's objective dimensionality.
    DimensionMismatch {
        /// The archive's enabled-axis count.
        expected: usize,
        /// The reference point's component count.
        got: usize,
    },
    /// A front point does not strictly dominate the reference point —
    /// it ties or exceeds it on the named axis, so its dominated box is
    /// empty (the clamping [`ParetoArchive::hypervolume`] silently
    /// drops such points instead).
    PointBeyondReference {
        /// Index of the offending point within [`ParetoArchive::front`].
        index: usize,
        /// Label of the first axis on which the point fails.
        axis: &'static str,
    },
}

impl std::fmt::Display for HypervolumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HypervolumeError::DimensionMismatch { expected, got } => {
                write!(f, "reference point has {got} components, objective set has {expected}")
            }
            HypervolumeError::PointBeyondReference { index, axis } => {
                write!(f, "front point {index} does not dominate the reference point on {axis}")
            }
        }
    }
}

impl std::error::Error for HypervolumeError {}

/// The non-dominated subset of all inserted points under a configurable
/// [`ObjectiveSet`] (accuracy ↑ × area ↓ by default).
///
/// Two-axis fronts are kept sorted by the second axis ascending (for
/// the default set: ascending area, and therefore ascending accuracy);
/// higher-dimensional fronts keep insertion order.
#[derive(Debug)]
pub struct ParetoArchive {
    objectives: ObjectiveSet,
    points: Vec<DesignPoint>,
    inserted: usize,
    /// The last hypervolume query's per-point terms, reused by the next
    /// query against the same reference point (interior mutability:
    /// queries take `&self`). Inserts need not invalidate it — each
    /// query diffs the front's current keys against the snapshot.
    hv_cache: Mutex<Option<HvCache>>,
}

/// One hypervolume query's decomposition: the canonical reference
/// point it was measured against (bit pattern — the cache key), the
/// filtered (and, in N-D, sorted) canonical key vectors the terms
/// align to, and the per-point contribution terms themselves.
#[derive(Debug, Clone)]
struct HvCache {
    ref_bits: Vec<u64>,
    keys: Vec<Vec<f64>>,
    terms: Vec<f64>,
}

impl Clone for ParetoArchive {
    fn clone(&self) -> Self {
        Self {
            objectives: self.objectives.clone(),
            points: self.points.clone(),
            inserted: self.inserted,
            hv_cache: Mutex::new(lock(&self.hv_cache).clone()),
        }
    }
}

/// Locks a cache slot, shrugging off poisoning (the cache is a pure
/// function of the front and the reference point, so a panicked writer
/// cannot leave it torn in any way a re-query would not fix).
fn lock(cache: &Mutex<Option<HvCache>>) -> std::sync::MutexGuard<'_, Option<HvCache>> {
    cache.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Default for ParetoArchive {
    fn default() -> Self {
        Self::with_objectives(ObjectiveSet::default())
    }
}

impl ParetoArchive {
    /// An empty archive over the default (accuracy, area) objectives.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty archive over an explicit objective space.
    pub fn with_objectives(objectives: ObjectiveSet) -> Self {
        Self { objectives, points: Vec::new(), inserted: 0, hv_cache: Mutex::new(None) }
    }

    /// The objective space this archive ranks by.
    pub fn objectives(&self) -> &ObjectiveSet {
        &self.objectives
    }

    /// Offers a point. Returns `true` if it entered the front (it is
    /// not dominated by, or metric-equal to, any archived point);
    /// dominated incumbents are evicted.
    pub fn insert(&mut self, p: DesignPoint) -> bool {
        self.inserted += 1;
        if self.objectives.dim() == 2 {
            self.insert_2d(p)
        } else {
            self.insert_nd(p)
        }
    }

    /// The first two enabled axes' canonical keys — the 2-D fast path's
    /// coordinates (for the default set: `(-accuracy, area)`).
    fn key2(&self, p: &DesignPoint) -> (f64, f64) {
        let mut axes = self.objectives.enabled();
        let a = axes.next().expect("2-D set has a first axis");
        let b = axes.next().expect("2-D set has a second axis");
        (a.objective.key(p), b.objective.key(p))
    }

    /// The original sorted 2-D insert, expressed over canonical keys
    /// `(k0, k1)` — negation is exact, so for the default set this is
    /// bit-for-bit the historical (accuracy, area) behavior.
    fn insert_2d(&mut self, p: DesignPoint) -> bool {
        let (pk0, pk1) = self.key2(&p);
        // Points left of `pos` have k1 <= p's; the front's k0 is
        // non-increasing in k1, so the strongest potential dominator is
        // the first point at or right of p by k1.
        let pos = self.points.partition_point(|q| {
            let (k0, k1) = self.key2(q);
            (k1, k0) < (pk1, pk0)
        });
        // A dominator-or-equal has k1 <= p's and k0 <= p's: by the sort
        // order it sits at `pos` onwards only if its k1 ties p's, or
        // anywhere left of pos. Left of pos, k0 is minimal just before
        // pos.
        let weakly_dominated = self.points[..pos].last().is_some_and(|q| self.key2(q).0 <= pk0)
            || self.points[pos..].first().is_some_and(|q| {
                let (k0, k1) = self.key2(q);
                k1 <= pk1 && k0 <= pk0
            });
        if weakly_dominated {
            return false;
        }
        // p enters: evict the contiguous run of points it dominates
        // (k1 >= p's, k0 >= p's — they start at pos).
        let evict_end = pos
            + self.points[pos..]
                .iter()
                .take_while(|q| {
                    let (k0, k1) = self.key2(q);
                    k0 >= pk0 && k1 >= pk1
                })
                .count();
        self.points.splice(pos..evict_end, std::iter::once(p));
        true
    }

    /// Linear-scan insert for 1-, 3- and 4-axis sets: reject when any
    /// incumbent weakly dominates `p`, otherwise evict everything `p`
    /// dominates and append (insertion order is preserved). Each
    /// incumbent's key vector is materialized once per insert.
    fn insert_nd(&mut self, p: DesignPoint) -> bool {
        let pk = self.objectives.keys(&p);
        let incumbent_keys: Vec<Vec<f64>> =
            self.points.iter().map(|q| self.objectives.keys(q)).collect();
        if incumbent_keys.iter().any(|qk| qk.iter().zip(&pk).all(|(qk, pk)| qk <= pk)) {
            return false;
        }
        // No incumbent weakly dominates p, so any incumbent p weakly
        // dominates is strictly worse somewhere — evict it.
        let mut keep = incumbent_keys.iter().map(|qk| !pk.iter().zip(qk).all(|(pk, qk)| pk <= qk));
        self.points.retain(|_| keep.next().expect("one keep flag per incumbent"));
        self.points.push(p);
        true
    }

    /// The current front: ascending by the second axis (area, for the
    /// default set) in 2-D, insertion order otherwise.
    pub fn front(&self) -> &[DesignPoint] {
        &self.points
    }

    /// Consumes the archive into its front.
    pub fn into_front(self) -> Vec<DesignPoint> {
        self.points
    }

    /// Number of points currently on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when nothing has entered the front yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total number of points ever offered via [`ParetoArchive::insert`].
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// The exact hypervolume dominated by the front, measured against a
    /// reference point given in *raw axis units*, enabled-axis order
    /// (for the default set: `[ref_accuracy, ref_area]` — an accuracy
    /// lower bound and an area upper bound). Front points that do not
    /// strictly dominate the reference point are **clamped out**: they
    /// contribute nothing, exactly as the historical 2-D sweep skipped
    /// them ([`ParetoArchive::try_hypervolume`] turns them into a typed
    /// error instead). The larger the hypervolume, the better the
    /// front — the standard scalar for comparing fronts from different
    /// search strategies; fronts must share one reference point to be
    /// comparable.
    ///
    /// 2-D sets use the exact sorted sweep; other dimensionalities use
    /// the exact WFG algorithm over the lexicographically sorted front,
    /// so the value depends only on the front *set*, never on insertion
    /// order.
    ///
    /// # Panics
    ///
    /// Panics when `ref_point` does not have one component per enabled
    /// axis.
    pub fn hypervolume(&self, ref_point: &[f64]) -> f64 {
        assert_eq!(
            ref_point.len(),
            self.objectives.dim(),
            "reference point must have one component per enabled axis"
        );
        self.hv_impl(ref_point, true, true).expect("clamping mode never fails")
    }

    /// [`ParetoArchive::hypervolume`] with the incremental term cache
    /// bypassed: every contribution recomputed from scratch. This is
    /// the differential oracle the incremental path is pinned against
    /// (the two are bit-identical by construction — the cached path
    /// re-sums all terms in the same forward order) and the
    /// `delta_eval` benchmark's baseline.
    ///
    /// # Panics
    ///
    /// Panics when `ref_point` does not have one component per enabled
    /// axis.
    pub fn batch_hypervolume(&self, ref_point: &[f64]) -> f64 {
        assert_eq!(
            ref_point.len(),
            self.objectives.dim(),
            "reference point must have one component per enabled axis"
        );
        self.hv_impl(ref_point, true, false).expect("clamping mode never fails")
    }

    /// [`ParetoArchive::hypervolume`] that surfaces a malformed query as
    /// a typed [`HypervolumeError`] instead of clamping or panicking: a
    /// wrong-dimensional reference point, or a front point outside the
    /// reference box (which the clamping variant silently drops).
    pub fn try_hypervolume(&self, ref_point: &[f64]) -> Result<f64, HypervolumeError> {
        if ref_point.len() != self.objectives.dim() {
            return Err(HypervolumeError::DimensionMismatch {
                expected: self.objectives.dim(),
                got: ref_point.len(),
            });
        }
        self.hv_impl(ref_point, false, true)
    }

    fn hv_impl(
        &self,
        ref_point: &[f64],
        clamp: bool,
        use_cache: bool,
    ) -> Result<f64, HypervolumeError> {
        let rk = self.objectives.canonical_ref(ref_point);
        let labels = self.objectives.labels();
        // Keep only points strictly inside the reference box. A point
        // tying or exceeding the reference on any axis dominates an
        // empty sub-box — zero volume — so dropping it IS the clamp.
        let mut keys: Vec<Vec<f64>> = Vec::with_capacity(self.points.len());
        for (index, p) in self.points.iter().enumerate() {
            let k = self.objectives.keys(p);
            if let Some(axis) = (0..k.len()).find(|&j| k[j] >= rk[j]) {
                if clamp {
                    continue;
                }
                return Err(HypervolumeError::PointBeyondReference { index, axis: labels[axis] });
            }
            keys.push(k);
        }
        if self.objectives.dim() != 2 {
            // Sort lexicographically first so the WFG sum depends only
            // on the front set, not the insertion order.
            keys.sort_by(|a, b| a.partial_cmp(b).expect("finite objective values"));
        }
        let ref_bits: Vec<u64> = rk.iter().map(|r| r.to_bits()).collect();
        let old = if use_cache {
            // A different reference point re-keys the cache: its terms
            // measure different boxes, so none carry over.
            lock(&self.hv_cache).take().filter(|c| c.ref_bits == ref_bits)
        } else {
            None
        };
        let terms = if self.objectives.dim() == 2 {
            terms_2d(&keys, &rk, old.as_ref())
        } else {
            terms_nd(&keys, &rk, old.as_ref())
        };
        // Always a full forward re-sum: float addition is not
        // associative, so summing a delta into a running value would
        // drift from the batch recompute. Term by term this is exactly
        // the batch sweep's (and batch WFG's) addition sequence, which
        // is what keeps incremental and batch bit-identical.
        let mut hv = 0.0;
        for t in &terms {
            hv += t;
        }
        if use_cache {
            *lock(&self.hv_cache) = Some(HvCache { ref_bits, keys, terms });
        }
        Ok(hv)
    }
}

/// Bitwise key-vector equality — the strictest reuse test, so a cached
/// term is only ever copied when a fresh computation would have had
/// bit-equal inputs.
fn eq_key(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Lengths of the longest common prefix and (non-overlapping) suffix
/// of two key lists, by bitwise equality.
fn common_affix(old: &[Vec<f64>], new: &[Vec<f64>]) -> (usize, usize) {
    let limit = old.len().min(new.len());
    let mut p = 0;
    while p < limit && eq_key(&old[p], &new[p]) {
        p += 1;
    }
    let mut s = 0;
    while s < limit - p && eq_key(&old[old.len() - 1 - s], &new[new.len() - 1 - s]) {
        s += 1;
    }
    (p, s)
}

/// Per-point terms of the 2-D sorted sweep:
/// `(rk₁ − k₁ᵢ) · (k₀ᵢ₋₁ − k₀ᵢ)` with `k₀₋₁ = rk₀`. A term couples a
/// point to its predecessor, so common-prefix terms and
/// strictly-interior common-suffix terms carry over from the cache;
/// the spliced range (plus the suffix's first term, whose predecessor
/// may have changed) recomputes.
fn terms_2d(keys: &[Vec<f64>], rk: &[f64], old: Option<&HvCache>) -> Vec<f64> {
    let (p, s) = old.map_or((0, 0), |o| common_affix(&o.keys, keys));
    let n = keys.len();
    (0..n)
        .map(|i| {
            if i < p {
                return old.expect("a non-empty affix implies a cache").terms[i];
            }
            if s > 0 && i > n - s {
                let o = old.expect("a non-empty affix implies a cache");
                return o.terms[i + o.keys.len() - n];
            }
            let prev_k0 = if i == 0 { rk[0] } else { keys[i - 1][0] };
            (rk[1] - keys[i][1]) * (prev_k0 - keys[i][0])
        })
        .collect()
}

/// Per-point terms of the N-D WFG sum: point `i`'s exclusive
/// contribution, its inclusive box minus the hypervolume of the later
/// points limited into it. A term depends on the point and everything
/// sorted after it, so only common-suffix terms carry over; everything
/// before the change recomputes against the new suffix.
fn terms_nd(keys: &[Vec<f64>], rk: &[f64], old: Option<&HvCache>) -> Vec<f64> {
    let s = old.map_or(0, |o| common_affix(&o.keys, keys).1);
    let n = keys.len();
    (0..n)
        .map(|i| {
            if s > 0 && i >= n - s {
                let o = old.expect("a non-empty affix implies a cache");
                return o.terms[i + o.keys.len() - n];
            }
            let inclusive: f64 = keys[i].iter().zip(rk).map(|(k, r)| r - k).product();
            inclusive - wfg(&limit_set(&keys[i + 1..], &keys[i]), rk)
        })
        .collect()
}

/// Exact hypervolume of mutually comparable points in minimization
/// space (WFG: sum of exclusive contributions, each computed as the
/// point's inclusive box minus the hypervolume of the later points
/// limited to that box).
fn wfg(pts: &[Vec<f64>], rk: &[f64]) -> f64 {
    let mut hv = 0.0;
    for (i, p) in pts.iter().enumerate() {
        let inclusive: f64 = p.iter().zip(rk).map(|(k, r)| r - k).product();
        let limited = limit_set(&pts[i + 1..], p);
        hv += inclusive - wfg(&limited, rk);
    }
    hv
}

/// WFG's limit set: every later point clipped into `p`'s box
/// (componentwise max in minimization space), reduced to its
/// non-dominated subset.
fn limit_set(pts: &[Vec<f64>], p: &[f64]) -> Vec<Vec<f64>> {
    let mut out: Vec<Vec<f64>> = Vec::new();
    for q in pts {
        let lifted: Vec<f64> = q.iter().zip(p).map(|(a, b)| a.max(*b)).collect();
        if out.iter().any(|o| o.iter().zip(&lifted).all(|(a, b)| a <= b)) {
            continue;
        }
        out.retain(|o| !lifted.iter().zip(o).all(|(a, b)| a <= b));
        out.push(lifted);
    }
    out
}

impl Extend<DesignPoint> for ParetoArchive {
    fn extend<T: IntoIterator<Item = DesignPoint>>(&mut self, iter: T) {
        for p in iter {
            self.insert(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ObjectiveSet;
    use crate::Technique;

    fn p(acc: f64, area: f64) -> DesignPoint {
        p4(acc, area, 0.0, 0.0)
    }

    fn p4(acc: f64, area: f64, power: f64, delay: f64) -> DesignPoint {
        DesignPoint {
            technique: Technique::Cross,
            tau_c: None,
            phi_c: None,
            coeff: None,
            accuracy: acc,
            area_mm2: area,
            power_mw: power,
            gate_count: 0,
            critical_ms: delay,
        }
    }

    fn front_pairs(a: &ParetoArchive) -> Vec<(f64, f64)> {
        a.front().iter().map(|p| (p.accuracy, p.area_mm2)).collect()
    }

    #[test]
    fn matches_batch_front_on_fixed_set() {
        let pts = vec![p(0.9, 100.0), p(0.85, 60.0), p(0.8, 80.0), p(0.95, 120.0)];
        let mut arch = ParetoArchive::new();
        arch.extend(pts.iter().cloned());
        let batch: Vec<(f64, f64)> = crate::pareto::pareto_front(&pts)
            .into_iter()
            .map(|i| (pts[i].accuracy, pts[i].area_mm2))
            .collect();
        assert_eq!(front_pairs(&arch), batch);
        assert_eq!(arch.inserted(), 4);
    }

    #[test]
    fn dominated_insert_bounces_and_dominating_insert_evicts() {
        let mut arch = ParetoArchive::new();
        assert!(arch.insert(p(0.9, 100.0)));
        assert!(!arch.insert(p(0.85, 110.0)), "dominated");
        assert!(!arch.insert(p(0.9, 100.0)), "metric-equal tie keeps the incumbent");
        assert!(arch.insert(p(0.95, 90.0)), "dominates the incumbent");
        assert_eq!(arch.len(), 1);
        assert!((arch.front()[0].area_mm2 - 90.0).abs() < 1e-12);
    }

    #[test]
    fn equal_area_keeps_only_the_more_accurate() {
        let mut arch = ParetoArchive::new();
        arch.insert(p(0.5, 10.0));
        arch.insert(p(0.6, 10.0));
        assert_eq!(front_pairs(&arch), vec![(0.6, 10.0)]);
        // And in the other insertion order.
        let mut arch = ParetoArchive::new();
        arch.insert(p(0.6, 10.0));
        arch.insert(p(0.5, 10.0));
        assert_eq!(front_pairs(&arch), vec![(0.6, 10.0)]);
    }

    #[test]
    fn hypervolume_rewards_better_fronts() {
        let mut a = ParetoArchive::new();
        a.extend([p(0.8, 50.0), p(0.9, 80.0)]);
        let mut b = ParetoArchive::new();
        b.extend([p(0.8, 40.0), p(0.95, 80.0)]);
        let r = [0.0, 100.0]; // accuracy lower bound, area upper bound
        assert!(b.hypervolume(&r) > a.hypervolume(&r));
        assert_eq!(ParetoArchive::new().hypervolume(&r), 0.0);
    }

    #[test]
    fn nd_insert_tracks_dominance_per_axis() {
        let mut arch = ParetoArchive::with_objectives(ObjectiveSet::accuracy_area_power());
        assert!(arch.insert(p4(0.9, 100.0, 10.0, 0.0)));
        // Dominated in 2-D, saved by the power axis in 3-D.
        assert!(arch.insert(p4(0.9, 110.0, 8.0, 0.0)));
        assert_eq!(arch.len(), 2);
        // Strictly better power evicts the first point only.
        assert!(arch.insert(p4(0.9, 100.0, 9.0, 0.0)));
        assert_eq!(arch.len(), 2);
        assert!(!arch.insert(p4(0.9, 100.0, 9.0, 0.0)), "metric-equal tie");
        assert!(!arch.insert(p4(0.89, 100.0, 9.5, 0.0)), "dominated in 3-D");
        assert_eq!(arch.inserted(), 5);
    }

    #[test]
    fn nd_hypervolume_reduces_to_2d_when_an_axis_is_constant() {
        // Every point shares power 3.0, so the 3-D volume is exactly
        // the 2-D volume times the power slab (ref_power - 3.0). Exact
        // integer-valued coordinates make the comparison bitwise.
        let pts = [p4(8.0, 5.0, 3.0, 0.0), p4(6.0, 2.0, 3.0, 0.0), p4(3.0, 1.0, 3.0, 0.0)];
        let mut two = ParetoArchive::new();
        two.extend(pts.iter().cloned());
        let mut three = ParetoArchive::with_objectives(ObjectiveSet::accuracy_area_power());
        three.extend(pts.iter().cloned());
        let hv2 = two.hypervolume(&[0.0, 10.0]);
        let hv3 = three.hypervolume(&[0.0, 10.0, 7.0]);
        assert_eq!(hv3, hv2 * 4.0);
    }

    #[test]
    fn wfg_handles_overlapping_boxes_exactly() {
        // Two overlapping 3-D boxes: union = a + b - intersection.
        let a = p4(4.0, 2.0, 2.0, 0.0);
        let b = p4(2.0, 1.0, 1.0, 0.0);
        let mut arch = ParetoArchive::with_objectives(ObjectiveSet::accuracy_area_power());
        arch.extend([a, b]);
        let hv = arch.hypervolume(&[0.0, 4.0, 4.0]);
        // a: 4*2*2 = 16; b: 2*3*3 = 18; intersection: 2*2*2 = 8.
        assert_eq!(hv, 16.0 + 18.0 - 8.0);
    }

    #[test]
    fn try_hypervolume_types_the_failure_modes() {
        let mut arch = ParetoArchive::new();
        arch.extend([p(0.9, 50.0), p(0.5, 10.0)]);
        assert_eq!(
            arch.try_hypervolume(&[0.0, 100.0, 1.0]),
            Err(HypervolumeError::DimensionMismatch { expected: 2, got: 3 })
        );
        // Area 50 exceeds a reference area of 40: index 1 in the
        // area-sorted front, failing on the area axis.
        let err = arch.try_hypervolume(&[0.0, 40.0]).unwrap_err();
        assert_eq!(err, HypervolumeError::PointBeyondReference { index: 1, axis: "area_mm2" });
        assert!(err.to_string().contains("area_mm2"));
        // The clamping variant drops the offender and keeps the rest.
        assert_eq!(arch.hypervolume(&[0.0, 40.0]), (40.0 - 10.0) * 0.5);
        // Both agree when everything is inside the box.
        assert_eq!(arch.try_hypervolume(&[0.0, 100.0]), Ok(arch.hypervolume(&[0.0, 100.0])));
    }

    #[test]
    #[should_panic(expected = "one component per enabled axis")]
    fn clamping_hypervolume_still_rejects_bad_dimensions() {
        ParetoArchive::new().hypervolume(&[0.0]);
    }

    #[test]
    fn incremental_hypervolume_tracks_inserts_bit_for_bit() {
        // Interleave inserts and same-reference queries — the
        // search-loop pattern the term cache serves — and pin every
        // cached answer against the cache-bypassing batch oracle, in
        // 2-D (sweep terms) and 4-D (WFG terms).
        let mut state = 0xA076_1D64_78BD_642Fu64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % 40
        };
        let mut two = ParetoArchive::new();
        let mut four = ParetoArchive::with_objectives(ObjectiveSet::all());
        let (r2, r4) = ([0.0, 40.0], [0.0, 40.0, 40.0, 40.0]);
        for _ in 0..60 {
            let (acc, area) = (next() as f64, next() as f64);
            let (power, delay) = (next() as f64, next() as f64);
            two.insert(p(acc, area));
            four.insert(p4(acc, area, power, delay));
            assert_eq!(two.hypervolume(&r2), two.batch_hypervolume(&r2), "2-D sweep");
            assert_eq!(four.hypervolume(&r4), four.batch_hypervolume(&r4), "N-D WFG");
        }
        // A clone carries the cache and stays consistent on its own.
        let cloned = four.clone();
        assert_eq!(cloned.hypervolume(&r4), four.batch_hypervolume(&r4));
    }

    #[test]
    fn changing_the_reference_point_recomputes_instead_of_reusing_the_cache() {
        let mut arch = ParetoArchive::new();
        arch.extend([p(0.9, 50.0), p(0.5, 10.0)]);
        // Prime the cache with one reference point…
        let warm = [0.0, 100.0];
        assert_eq!(arch.hypervolume(&warm), arch.batch_hypervolume(&warm));
        // …then query a different one: a stale cache reused here would
        // return the old reference's terms. Every entry point must
        // recompute — including the clamping variant, whose filtered
        // front differs under the tighter box.
        let tight = [0.0, 40.0];
        assert_eq!(arch.hypervolume(&tight), (40.0 - 10.0) * 0.5);
        assert_eq!(arch.try_hypervolume(&[0.0, 100.0]), Ok(arch.batch_hypervolume(&warm)));
        // And flip-flopping between the two stays exact.
        assert_eq!(arch.hypervolume(&warm), arch.batch_hypervolume(&warm));
        assert_eq!(arch.hypervolume(&tight), arch.batch_hypervolume(&tight));
    }

    #[test]
    fn fast_2d_sweep_matches_generic_wfg() {
        // Drive both code paths over the same geometry: a 2-D archive
        // (sorted sweep) versus a 4-D archive whose power/delay axes
        // are constant zero (WFG). With ref 1.0 on the constant axes
        // the slab factor is exactly 1, so the volumes must be
        // bit-identical. A hand-rolled LCG generates a dense cloud with
        // plenty of ties.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) % 50
        };
        for _ in 0..20 {
            let mut two = ParetoArchive::new();
            let mut four = ParetoArchive::with_objectives(ObjectiveSet::all());
            for _ in 0..40 {
                let (acc, area) = (next() as f64, next() as f64);
                two.insert(p(acc, area));
                four.insert(p4(acc, area, 0.0, 0.0));
            }
            let hv2 = two.hypervolume(&[0.0, 50.0]);
            let hv4 = four.hypervolume(&[0.0, 50.0, 1.0, 1.0]);
            assert_eq!(hv2, hv4, "sweep and WFG disagree");
        }
    }
}
