//! Incremental Pareto archive over (accuracy ↑, area ↓).
//!
//! [`pareto::pareto_front`](crate::pareto::pareto_front) recomputes the
//! front from scratch — fine once per study, wasteful inside a search
//! loop that adds designs one at a time. [`ParetoArchive`] maintains the
//! front under insertion: each insert either bounces off a dominating
//! incumbent or enters and evicts everything it dominates, in
//! `O(log n + k)` per insert (binary search plus the evicted range).
//! The archive always equals the batch front over every point ever
//! inserted (first occurrence kept on exact metric ties), which the
//! `proptest_explore` suite asserts against random point sets.

use crate::DesignPoint;

/// The non-dominated subset of all inserted points, kept sorted by
/// ascending area (and therefore ascending accuracy).
#[derive(Debug, Clone, Default)]
pub struct ParetoArchive {
    points: Vec<DesignPoint>,
    inserted: usize,
}

impl ParetoArchive {
    /// An empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offers a point. Returns `true` if it entered the front (it is
    /// not dominated by, or metric-equal to, any archived point);
    /// dominated incumbents are evicted.
    pub fn insert(&mut self, p: DesignPoint) -> bool {
        self.inserted += 1;
        // Points left of `pos` have area <= p's; the front's accuracy is
        // non-decreasing in area, so the strongest potential dominator
        // is the first point at or right of p by area.
        let pos =
            self.points.partition_point(|q| (q.area_mm2, -q.accuracy) < (p.area_mm2, -p.accuracy));
        // A dominator-or-equal has area <= p.area and accuracy >= p's:
        // by the sort order it sits at `pos` onwards only if its area
        // ties p's, or anywhere left of pos. Left of pos, accuracy is
        // maximal just before pos.
        if self.points[..pos].last().is_some_and(|q| q.accuracy >= p.accuracy)
            || self.points[pos..]
                .first()
                .is_some_and(|q| q.area_mm2 <= p.area_mm2 && q.accuracy >= p.accuracy)
        {
            return false;
        }
        // p enters: evict the contiguous run of points it dominates
        // (area >= p's, accuracy <= p's — they start at pos).
        let evict_end = pos
            + self.points[pos..]
                .iter()
                .take_while(|q| q.accuracy <= p.accuracy && q.area_mm2 >= p.area_mm2)
                .count();
        self.points.splice(pos..evict_end, std::iter::once(p));
        true
    }

    /// The current front, ascending by area.
    pub fn front(&self) -> &[DesignPoint] {
        &self.points
    }

    /// Consumes the archive into its front.
    pub fn into_front(self) -> Vec<DesignPoint> {
        self.points
    }

    /// Number of points currently on the front.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when nothing has entered the front yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total number of points ever offered via [`ParetoArchive::insert`].
    pub fn inserted(&self) -> usize {
        self.inserted
    }

    /// The 2-D hypervolume dominated by the front, measured against a
    /// reference point `(ref_area, ref_accuracy)` that every front point
    /// must dominate (an area upper bound and accuracy lower bound).
    /// Points outside the reference box contribute nothing. The larger
    /// the hypervolume, the better the front — the standard scalar for
    /// comparing fronts from different search strategies.
    pub fn hypervolume(&self, ref_area: f64, ref_accuracy: f64) -> f64 {
        let mut hv = 0.0;
        let mut prev_acc = ref_accuracy;
        for p in &self.points {
            if p.area_mm2 >= ref_area || p.accuracy <= prev_acc {
                continue;
            }
            hv += (ref_area - p.area_mm2) * (p.accuracy - prev_acc);
            prev_acc = p.accuracy;
        }
        hv
    }
}

impl Extend<DesignPoint> for ParetoArchive {
    fn extend<T: IntoIterator<Item = DesignPoint>>(&mut self, iter: T) {
        for p in iter {
            self.insert(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Technique;

    fn p(acc: f64, area: f64) -> DesignPoint {
        DesignPoint {
            technique: Technique::Cross,
            tau_c: None,
            phi_c: None,
            accuracy: acc,
            area_mm2: area,
            power_mw: 0.0,
            gate_count: 0,
            critical_ms: 0.0,
        }
    }

    fn front_pairs(a: &ParetoArchive) -> Vec<(f64, f64)> {
        a.front().iter().map(|p| (p.accuracy, p.area_mm2)).collect()
    }

    #[test]
    fn matches_batch_front_on_fixed_set() {
        let pts = vec![p(0.9, 100.0), p(0.85, 60.0), p(0.8, 80.0), p(0.95, 120.0)];
        let mut arch = ParetoArchive::new();
        arch.extend(pts.iter().cloned());
        let batch: Vec<(f64, f64)> = crate::pareto::pareto_front(&pts)
            .into_iter()
            .map(|i| (pts[i].accuracy, pts[i].area_mm2))
            .collect();
        assert_eq!(front_pairs(&arch), batch);
        assert_eq!(arch.inserted(), 4);
    }

    #[test]
    fn dominated_insert_bounces_and_dominating_insert_evicts() {
        let mut arch = ParetoArchive::new();
        assert!(arch.insert(p(0.9, 100.0)));
        assert!(!arch.insert(p(0.85, 110.0)), "dominated");
        assert!(!arch.insert(p(0.9, 100.0)), "metric-equal tie keeps the incumbent");
        assert!(arch.insert(p(0.95, 90.0)), "dominates the incumbent");
        assert_eq!(arch.len(), 1);
        assert!((arch.front()[0].area_mm2 - 90.0).abs() < 1e-12);
    }

    #[test]
    fn equal_area_keeps_only_the_more_accurate() {
        let mut arch = ParetoArchive::new();
        arch.insert(p(0.5, 10.0));
        arch.insert(p(0.6, 10.0));
        assert_eq!(front_pairs(&arch), vec![(0.6, 10.0)]);
        // And in the other insertion order.
        let mut arch = ParetoArchive::new();
        arch.insert(p(0.6, 10.0));
        arch.insert(p(0.5, 10.0));
        assert_eq!(front_pairs(&arch), vec![(0.6, 10.0)]);
    }

    #[test]
    fn hypervolume_rewards_better_fronts() {
        let mut a = ParetoArchive::new();
        a.extend([p(0.8, 50.0), p(0.9, 80.0)]);
        let mut b = ParetoArchive::new();
        b.extend([p(0.8, 40.0), p(0.95, 80.0)]);
        let (ra, racc) = (100.0, 0.0);
        assert!(b.hypervolume(ra, racc) > a.hypervolume(ra, racc));
        assert_eq!(ParetoArchive::new().hypervolume(ra, racc), 0.0);
    }
}
