//! Pluggable design-space exploration engine.
//!
//! The paper explores >4300 `(τc, φc)` designs per circuit by
//! exhaustive enumeration. This module turns that hard-wired sweep into
//! a subsystem with swappable search shapes:
//!
//! * [`Candidate`] — the cross-layer genome: a graded per-layer
//!   coefficient-approximation gene ([`CoeffGene`], level 0 = exact)
//!   selecting the base circuit to prune, plus the `(τc, φc)`
//!   threshold pair;
//! * [`SearchStrategy`] — the ask/tell trait a search implements;
//!   shipped strategies are [`ExhaustiveGrid`] (the paper-faithful
//!   sweep) and [`Nsga2`] (seeded evolutionary search, budgeted by
//!   fresh evaluations);
//! * [`Evaluator`] — maps candidates to measured [`DesignPoint`]s,
//!   reusing one compiled tape + pruning analysis per base circuit and
//!   evaluating distinct prunings in parallel across a worker pool;
//! * [`EvalCache`] — content-hashed memoization, so duplicate
//!   pruned-gate sets are measured once, within *and across*
//!   strategies sharing one engine;
//! * [`EvalFabric`] — the seam to an external worker pool: attach one
//!   with [`Evaluator::with_fabric`] and fresh evaluations ship as
//!   owned batch jobs to (e.g.) the `pax-serve` engine instead of the
//!   evaluator's private thread pool, multiplexing design-space search
//!   with live serving traffic;
//! * [`ObjectiveSet`] — the configurable N-dimensional objective space
//!   (any subset of accuracy ↑ / area ↓ / power ↓ / delay ↓, with
//!   per-axis direction, weights and masking);
//! * [`ParetoArchive`] — the objective-space front maintained
//!   incrementally at insert time instead of batch-recomputed, with an
//!   exact hypervolume (sorted sweep in 2-D, WFG slicing in N-D);
//! * [`Engine`] — the driver loop: ask → evaluate → archive → tell.
//!
//! [`Framework::run_study`](crate::framework::Framework::run_study)
//! runs on this engine; strategy selection lives in
//! [`FrameworkConfig::search`](crate::framework::FrameworkConfig) and
//! per-strategy statistics surface in
//! [`ExecStats::search`](crate::framework::ExecStats).
//!
//! # Examples
//!
//! Sweep a grid and an evolutionary search over one engine, sharing
//! measured designs:
//!
//! ```no_run
//! use pax_core::explore::{
//!     CoeffGene, Engine, EvalContext, Evaluator, ExhaustiveGrid, Nsga2, Nsga2Config,
//! };
//! use pax_core::prune::{analyze, PruneConfig};
//! # let (netlist, model, train, test): (pax_netlist::Netlist, pax_ml::quant::QuantizedModel, pax_ml::Dataset, pax_ml::Dataset) = unimplemented!();
//!
//! let lib = egt_pdk::egt_library();
//! let tech = egt_pdk::TechParams::egt();
//! let analysis = analyze(&netlist, &model, &train);
//! let evaluator = Evaluator::new(
//!     &lib,
//!     &tech,
//!     &test,
//!     vec![EvalContext { coeff: CoeffGene::exact(), netlist: &netlist, model: &model, analysis }],
//! );
//! let mut engine = Engine::new(&evaluator, &PruneConfig::default());
//! let grid = engine.run(&mut ExhaustiveGrid::new()).unwrap();
//! let evo = engine.run(&mut Nsga2::new(Nsga2Config::default())).unwrap();
//! assert!(evo.stats.cache_hits > 0, "designs the grid measured come for free");
//! ```

mod archive;
mod evaluator;
mod fabric;
mod grid;
mod nsga2;
mod objective;

pub use archive::{HypervolumeError, ParetoArchive};
pub use evaluator::{CoeffAxis, EvalCache, EvalContext, EvalMode, Evaluator};
pub use fabric::{EvalFabric, FabricError, FabricJob};
pub use grid::ExhaustiveGrid;
pub use nsga2::{resolve_seed, Nsga2, Nsga2Config};
pub use objective::{Objective, ObjectiveAxis, ObjectiveSet};

use std::sync::Arc;
use std::time::Instant;

use pax_obs::{AxisExtreme, JournalEvent, PhasesSnapshot, StudyJournal};

use crate::error::StudyError;
use crate::prune::{DeltaFoldStats, PruneConfig};
use crate::DesignPoint;

/// Maximum number of weighted-sum layers the coefficient gene grades
/// independently. The models in `pax-ml` have at most two (an MLP's
/// hidden and output layers); single-layer models simply ignore the
/// second slot.
pub const MAX_COEFF_LAYERS: usize = 2;

/// The graded per-layer coefficient-approximation gene.
///
/// Each slot holds one approximation *level* for the corresponding
/// weighted-sum layer: level `0` is exact, higher levels select
/// progressively wider `±e` neighbourhoods from the evaluator's
/// coefficient axis ([`CoeffAxis`]). The gene is a pure label — its
/// hardware meaning comes from the [`EvalContext`] (or lazily
/// materialized context) carrying the same gene, which is why legacy
/// two-context setups can keep using `exact()` / `uniform(1)` without
/// ever configuring level widths.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct CoeffGene {
    levels: [u8; MAX_COEFF_LAYERS],
}

impl CoeffGene {
    /// The all-zero gene: prune the exact bespoke baseline.
    pub const fn exact() -> Self {
        Self { levels: [0; MAX_COEFF_LAYERS] }
    }

    /// The same approximation level on every layer. `uniform(1)` is the
    /// conventional label for "the one pre-approximated circuit" in
    /// legacy two-context setups.
    pub const fn uniform(level: u8) -> Self {
        Self { levels: [level; MAX_COEFF_LAYERS] }
    }

    /// A gene from explicit per-layer levels; layers beyond
    /// [`MAX_COEFF_LAYERS`] are rejected, missing trailing layers stay
    /// exact.
    pub fn per_layer(levels: &[u8]) -> Self {
        assert!(levels.len() <= MAX_COEFF_LAYERS, "too many coeff layers");
        let mut out = [0u8; MAX_COEFF_LAYERS];
        out[..levels.len()].copy_from_slice(levels);
        Self { levels: out }
    }

    /// Whether every layer is exact (level 0).
    pub fn is_exact(&self) -> bool {
        self.levels == [0; MAX_COEFF_LAYERS]
    }

    /// The approximation level of `layer` (0 beyond the gene's slots).
    pub fn level(&self, layer: usize) -> u8 {
        self.levels.get(layer).copied().unwrap_or(0)
    }

    /// All per-layer levels.
    pub fn levels(&self) -> &[u8; MAX_COEFF_LAYERS] {
        &self.levels
    }

    /// City-block distance between two genes — the repair metric used
    /// to snap a foreign gene onto the nearest in-space context.
    pub fn distance(&self, other: &Self) -> u32 {
        self.levels.iter().zip(&other.levels).map(|(&a, &b)| u32::from(a.abs_diff(b))).sum()
    }

    /// A slash-free rendering for path-like labels (journal `study`
    /// fields): `exact` or `L2.1`.
    pub fn tag(&self) -> String {
        if self.is_exact() {
            return "exact".to_owned();
        }
        let mut out = String::from("L");
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                out.push('.');
            }
            out.push_str(&l.to_string());
        }
        out
    }

    /// Inverse of the [`Display`](std::fmt::Display) form (`exact` or
    /// `l0/l1/…`) — used by the artifact text format.
    pub fn from_label(label: &str) -> Option<Self> {
        if label == "exact" {
            return Some(Self::exact());
        }
        let levels: Option<Vec<u8>> = label.split('/').map(|t| t.parse().ok()).collect();
        let levels = levels?;
        if levels.is_empty() || levels.len() > MAX_COEFF_LAYERS {
            return None;
        }
        Some(Self::per_layer(&levels))
    }
}

impl std::fmt::Display for CoeffGene {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_exact() {
            return write!(f, "exact");
        }
        write!(f, "{}", self.levels[0])?;
        for l in &self.levels[1..] {
            write!(f, "/{l}")?;
        }
        Ok(())
    }
}

/// One point of the cross-layer search space — the genome strategies
/// breed and the [`Evaluator`] measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The per-layer coefficient-approximation level selecting the base
    /// circuit to prune ([`CoeffGene::exact`] = the exact baseline).
    pub coeff: CoeffGene,
    /// The τ threshold: gates whose dominant-value fraction reaches it
    /// qualify for pruning.
    pub tau_c: f64,
    /// The φ threshold: qualified gates additionally need significance
    /// at most φc.
    pub phi_c: i64,
}

/// Per-base-circuit view of the searchable space.
#[derive(Debug, Clone)]
pub struct ContextSpace {
    /// The coefficient gene selecting this base circuit.
    pub gene: CoeffGene,
    /// `(τ, φ)` of every prunable gate of the base circuit.
    pub gates: Vec<(f64, i64)>,
}

impl ContextSpace {
    /// Distinct φ values of the τ-qualified gates at `tau_c`, ascending
    /// — the paper's Φτ set of relevant φ thresholds.
    pub fn phis_at(&self, tau_c: f64) -> Vec<i64> {
        let mut phis: Vec<i64> = self
            .gates
            .iter()
            .filter(|&&(tau, _)| tau >= tau_c - 1e-12)
            .map(|&(_, phi)| phi)
            .collect();
        phis.sort_unstable();
        phis.dedup();
        phis
    }

    /// Distinct gate τ values, ascending — the knee points of the τ
    /// axis: thresholds between two of them select identical gate sets.
    pub fn distinct_taus(&self) -> Vec<f64> {
        let mut taus: Vec<f64> = self.gates.iter().map(|&(tau, _)| tau).collect();
        taus.sort_by(|a, b| a.partial_cmp(b).expect("finite τ"));
        taus.dedup();
        taus
    }

    /// Distinct gate φ values, ascending; `[-1]` when the circuit has
    /// no prunable gates (so genomes stay well-formed).
    pub fn distinct_phis(&self) -> Vec<i64> {
        let mut phis: Vec<i64> = self.gates.iter().map(|&(_, phi)| phi).collect();
        phis.sort_unstable();
        phis.dedup();
        if phis.is_empty() {
            phis.push(-1);
        }
        phis
    }
}

/// What a strategy may search over: the configured τc steps (for
/// grid-faithful strategies), the τ bounds, and each base circuit's
/// per-gate metrics.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// The configured τc values, ascending (the exhaustive grid visits
    /// exactly these).
    pub tau_values: Vec<f64>,
    /// One entry per base circuit the evaluator holds.
    pub contexts: Vec<ContextSpace>,
}

impl SearchSpace {
    /// The context selected by a genome's coefficient gene.
    pub fn context(&self, gene: CoeffGene) -> Option<&ContextSpace> {
        self.contexts.iter().find(|c| c.gene == gene)
    }

    /// Like [`SearchSpace::context`], but a missing context surfaces as
    /// a typed [`StudyError::MissingContext`] — the path strategies use
    /// so a foreign genome degrades into a repair instead of a panic.
    pub fn require(&self, gene: CoeffGene) -> Result<&ContextSpace, StudyError> {
        self.context(gene).ok_or(StudyError::MissingContext { gene })
    }

    /// The in-space context whose gene is city-block nearest to `gene`
    /// (ties fall to the earlier context). `None` only for an empty
    /// space, which the [`Evaluator`] constructor rules out.
    pub fn nearest_context(&self, gene: CoeffGene) -> Option<&ContextSpace> {
        self.contexts.iter().min_by_key(|c| c.gene.distance(&gene))
    }

    /// `(lowest, highest)` configured τc.
    pub fn tau_bounds(&self) -> (f64, f64) {
        (
            self.tau_values.first().copied().unwrap_or(0.8),
            self.tau_values.last().copied().unwrap_or(0.99),
        )
    }
}

/// A pluggable search shape over the cross-layer genome.
///
/// The [`Engine`] drives the ask/tell loop: `ask` yields the next batch
/// of genomes to measure (one generation, or the whole sweep for
/// one-shot strategies; empty means the strategy is done), `tell`
/// returns the measured batch so the strategy can select survivors.
/// Strategies never measure anything themselves — the engine's
/// evaluator and cache do, which is what makes search shapes
/// interchangeable and lets them share measurements.
pub trait SearchStrategy {
    /// Short identifier used in stats and reports.
    fn name(&self) -> &str;

    /// Budget of fresh (non-cached) evaluations this strategy wants,
    /// `None` for unlimited. The engine truncates batches to honour it.
    fn budget(&self) -> Option<usize> {
        None
    }

    /// The next batch of candidates to evaluate; empty ends the search.
    fn ask(&mut self, space: &SearchSpace) -> Vec<Candidate>;

    /// Feedback: the evaluated batch, in ask order (possibly truncated
    /// to the evaluation budget), together with the engine's objective
    /// space so selection ranks candidates on the axes the study
    /// actually optimizes.
    fn tell(&mut self, results: &[(Candidate, DesignPoint)], objectives: &ObjectiveSet);
}

/// Per-strategy exploration statistics, surfaced through
/// [`ExecStats`](crate::framework::ExecStats).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Strategy name.
    pub strategy: String,
    /// Candidates the strategy asked for (the paper counts these as
    /// "explored designs").
    pub asked: usize,
    /// Fresh evaluations actually synthesized and simulated.
    pub evaluated: usize,
    /// Evaluations served from the content-hash cache.
    pub cache_hits: usize,
    /// Ask/tell rounds driven (generations, for evolutionary shapes).
    pub generations: usize,
    /// Labels of the enabled objective axes the search optimized.
    pub objectives: Vec<String>,
    /// Per-axis extremes over the final front (one entry per enabled
    /// axis; empty when the front is).
    pub axes: Vec<AxisStats>,
    /// Size of the final Pareto front.
    pub front_size: usize,
    /// Final front hypervolume against [`SearchStats::hv_ref`], `None`
    /// until anything was measured. With the fixed per-run reference
    /// point this is the value the search journal's last record shows.
    pub hypervolume: Option<f64>,
    /// The hypervolume reference point, fixed at the first measured
    /// generation (raw axis units, enabled-axis order): `0.0` for
    /// maximized axes, twice the first batch's worst value for
    /// minimized ones — deterministic for a seeded search.
    pub hv_ref: Vec<f64>,
    /// Phase-timed evaluation telemetry for this run.
    pub telemetry: SearchTelemetry,
}

/// Wall-clock telemetry of one search run: where evaluation time went,
/// split into the [`EVAL_PHASES`](crate::prune::EVAL_PHASES) phases.
///
/// Equality compares only the deterministic phase *call counts* —
/// nanosecond totals differ run to run, and `SearchStats` equality
/// (exercised by the determinism suite) must hold across identical
/// seeded runs.
#[derive(Debug, Clone, Default)]
pub struct SearchTelemetry {
    /// Per-phase call counts and wall time for this run (deltas, not
    /// evaluator lifetime totals).
    pub phases: PhasesSnapshot,
    /// Wall time of the whole ask→evaluate→tell loop, milliseconds.
    pub wall_ms: f64,
    /// Delta-evaluation counters for this run (again a delta over the
    /// evaluator's lifetime totals). Excluded from equality alongside
    /// the nanosecond totals: the delta/full split depends on how the
    /// worker pool chunked each batch, not on the candidate stream, so
    /// it may legitimately vary between identical seeded runs.
    pub delta: DeltaFoldStats,
}

impl PartialEq for SearchTelemetry {
    fn eq(&self, other: &Self) -> bool {
        self.phases.counts() == other.phases.counts()
    }
}

/// One objective axis's extremes over a search's final front.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisStats {
    /// Axis label (see [`Objective::label`]).
    pub axis: String,
    /// The best front value on this axis (max for maximized axes, min
    /// otherwise).
    pub best: f64,
    /// The worst front value on this axis.
    pub worst: f64,
}

/// Everything one [`Engine::run`] produced.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// Every evaluated `(genome, measurement)`, in ask order.
    pub points: Vec<(Candidate, DesignPoint)>,
    /// The non-dominated subset, maintained incrementally.
    pub archive: ParetoArchive,
    /// Exploration counters.
    pub stats: SearchStats,
}

/// The exploration driver: owns the evaluation cache (shared across
/// every strategy run on this engine) and loops ask → evaluate →
/// archive → tell until the strategy finishes or exhausts its budget.
#[derive(Debug)]
pub struct Engine<'a, 'b> {
    evaluator: &'b Evaluator<'a>,
    space: SearchSpace,
    cache: EvalCache,
    objectives: ObjectiveSet,
    /// Explicit journal sink; when absent, each run checks the
    /// `PAX_OBS_JOURNAL` environment toggle instead.
    journal: Option<Arc<StudyJournal>>,
    journal_label: String,
}

impl<'a, 'b> Engine<'a, 'b> {
    /// Creates an engine over an evaluator, optimizing the default
    /// (accuracy, area) objectives; the search space derives from the
    /// evaluator's contexts and the pruning configuration's τ steps.
    pub fn new(evaluator: &'b Evaluator<'a>, cfg: &PruneConfig) -> Self {
        Self::with_objectives(evaluator, cfg, ObjectiveSet::default())
    }

    /// [`Engine::new`] over an explicit objective space: archives,
    /// hypervolumes and strategy selection all rank by `objectives`.
    pub fn with_objectives(
        evaluator: &'b Evaluator<'a>,
        cfg: &PruneConfig,
        objectives: ObjectiveSet,
    ) -> Self {
        let space = evaluator.space(cfg);
        Self {
            evaluator,
            space,
            cache: EvalCache::new(),
            objectives,
            journal: None,
            journal_label: "study".to_owned(),
        }
    }

    /// Routes every subsequent run's generation records to `journal`
    /// (otherwise the `PAX_OBS_JOURNAL` environment toggle decides).
    /// Journals may be shared across engines — appends are whole-line
    /// atomic.
    pub fn set_journal(&mut self, journal: Arc<StudyJournal>) {
        self.journal = Some(journal);
    }

    /// The `study` field journal records carry (default `"study"`;
    /// the framework passes `model/series`).
    pub fn set_journal_label(&mut self, label: impl Into<String>) {
        self.journal_label = label.into();
    }

    /// The space strategies search over.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The engine's evaluation cache (inspection only).
    pub fn cache(&self) -> &EvalCache {
        &self.cache
    }

    /// The objective space runs on this engine optimize.
    pub fn objectives(&self) -> &ObjectiveSet {
        &self.objectives
    }

    /// Swaps the objective space for subsequent runs, keeping the
    /// evaluation cache — re-ranking already-measured designs under new
    /// objectives costs no fresh synthesis or simulation.
    pub fn set_objectives(&mut self, objectives: ObjectiveSet) {
        self.objectives = objectives;
    }

    /// Drives one strategy to completion. The cache persists across
    /// calls, so a second strategy re-measures nothing the first
    /// already paid for.
    pub fn run(&mut self, strategy: &mut dyn SearchStrategy) -> Result<SearchOutcome, StudyError> {
        let journal = match &self.journal {
            Some(journal) => Some(Arc::clone(journal)),
            None => StudyJournal::from_env()
                .map_err(|e| StudyError::Journal(e.to_string()))?
                .map(Arc::new),
        };
        let run_start = Instant::now();
        let telemetry_start = self.evaluator.telemetry();
        let delta_start = self.evaluator.delta_stats();
        let mut points = Vec::new();
        let mut archive = ParetoArchive::with_objectives(self.objectives.clone());
        let mut stats = SearchStats {
            strategy: strategy.name().to_string(),
            objectives: self.objectives.labels().iter().map(|l| l.to_string()).collect(),
            ..Default::default()
        };
        let budget = strategy.budget();
        let mut spent = 0usize;
        // Fixed once the first batch lands, so per-generation
        // hypervolumes are comparable (and monotone non-decreasing).
        let mut ref_point: Option<Vec<f64>> = None;
        loop {
            let gen_start = Instant::now();
            let batch = strategy.ask(&self.space);
            if batch.is_empty() {
                break;
            }
            stats.generations += 1;
            stats.asked += batch.len();
            let remaining = budget.map(|b| b.saturating_sub(spent));
            let (results, fresh) =
                self.evaluator.evaluate_batch(&batch, &mut self.cache, remaining)?;
            spent += fresh;
            stats.evaluated += fresh;
            stats.cache_hits += results.len() - fresh;
            // Results may be a truncated prefix when the budget ran
            // out; the strategy only learns about what was measured.
            stats.asked -= batch.len() - results.len();
            archive.extend(results.iter().map(|(_, p)| p.clone()));
            strategy.tell(&results, &self.objectives);
            if ref_point.is_none() && !results.is_empty() {
                ref_point = Some(reference_point(&self.objectives, results.iter().map(|(_, p)| p)));
            }
            if let Some(journal) = &journal {
                let hv = ref_point
                    .as_ref()
                    .filter(|_| !archive.is_empty())
                    .map(|r| archive.hypervolume(r));
                let event = JournalEvent {
                    study: self.journal_label.clone(),
                    strategy: stats.strategy.clone(),
                    gen: stats.generations as u64 - 1,
                    asked: results.len() as u64,
                    fresh: fresh as u64,
                    cached: (results.len() - fresh) as u64,
                    front: archive.len() as u64,
                    hypervolume: hv,
                    ref_point: ref_point.clone().unwrap_or_default(),
                    axes: axis_stats(&self.objectives, archive.front())
                        .into_iter()
                        .map(|a| AxisExtreme { axis: a.axis, best: a.best, worst: a.worst })
                        .collect(),
                    wall_ms: gen_start.elapsed().as_secs_f64() * 1e3,
                };
                journal.append(&event).map_err(|e| StudyError::Journal(e.to_string()))?;
            }
            points.extend(results);
            if remaining.is_some_and(|r| fresh >= r) {
                break;
            }
        }
        stats.axes = axis_stats(&self.objectives, archive.front());
        stats.front_size = archive.len();
        stats.hypervolume =
            ref_point.as_ref().filter(|_| !archive.is_empty()).map(|r| archive.hypervolume(r));
        stats.hv_ref = ref_point.unwrap_or_default();
        stats.telemetry = SearchTelemetry {
            phases: self.evaluator.telemetry().since(&telemetry_start),
            wall_ms: run_start.elapsed().as_secs_f64() * 1e3,
            delta: self.evaluator.delta_stats().since(&delta_start),
        };
        Ok(SearchOutcome { points, archive, stats })
    }
}

/// The fixed hypervolume reference point derived from the first
/// measured batch: `0.0` for maximized axes (any positive value
/// dominates it), twice the batch's worst value for minimized ones
/// (`1.0` when that worst is not positive, keeping the box nonempty).
/// Deterministic whenever the first batch is — seeded searches journal
/// identical reference points run to run.
fn reference_point<'p>(
    objectives: &ObjectiveSet,
    points: impl Iterator<Item = &'p DesignPoint> + Clone,
) -> Vec<f64> {
    objectives
        .enabled()
        .map(|axis| {
            if axis.objective.maximize() {
                0.0
            } else {
                let worst = points
                    .clone()
                    .map(|p| axis.objective.value(p))
                    .fold(f64::NEG_INFINITY, f64::max);
                if worst > 0.0 {
                    2.0 * worst
                } else {
                    1.0
                }
            }
        })
        .collect()
}

/// Per-axis extremes of a front, in enabled-axis order.
fn axis_stats(objectives: &ObjectiveSet, front: &[DesignPoint]) -> Vec<AxisStats> {
    if front.is_empty() {
        return Vec::new();
    }
    objectives
        .enabled()
        .map(|axis| {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for p in front {
                let v = axis.objective.value(p);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            let (best, worst) = if axis.objective.maximize() { (hi, lo) } else { (lo, hi) };
            AxisStats { axis: axis.objective.label().to_string(), best, worst }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_space_phi_tau_helpers() {
        let ctx = ContextSpace {
            gene: CoeffGene::exact(),
            gates: vec![(0.9, 3), (0.8, 1), (0.95, 3), (0.85, -1)],
        };
        assert_eq!(ctx.phis_at(0.79), vec![-1, 1, 3]);
        assert_eq!(ctx.phis_at(0.9), vec![3]);
        assert_eq!(ctx.distinct_taus(), vec![0.8, 0.85, 0.9, 0.95]);
        assert_eq!(ctx.distinct_phis(), vec![-1, 1, 3]);
        let empty = ContextSpace { gene: CoeffGene::uniform(1), gates: vec![] };
        assert_eq!(empty.distinct_phis(), vec![-1]);
    }

    #[test]
    fn search_space_lookup() {
        let space = SearchSpace {
            tau_values: vec![0.8, 0.99],
            contexts: vec![ContextSpace { gene: CoeffGene::uniform(1), gates: vec![] }],
        };
        assert!(space.context(CoeffGene::uniform(1)).is_some());
        assert!(space.context(CoeffGene::exact()).is_none());
        assert!(matches!(
            space.require(CoeffGene::exact()),
            Err(StudyError::MissingContext { gene }) if gene == CoeffGene::exact()
        ));
        assert_eq!(space.tau_bounds(), (0.8, 0.99));
    }

    #[test]
    fn coeff_gene_labels_and_distance() {
        assert!(CoeffGene::exact().is_exact());
        assert!(CoeffGene::default().is_exact());
        assert!(!CoeffGene::uniform(1).is_exact());
        assert_eq!(CoeffGene::per_layer(&[2]), CoeffGene::per_layer(&[2, 0]));
        assert_eq!(CoeffGene::per_layer(&[1, 3]).level(1), 3);
        assert_eq!(CoeffGene::per_layer(&[1, 3]).level(9), 0, "beyond the slots is exact");
        assert_eq!(CoeffGene::exact().distance(&CoeffGene::per_layer(&[2, 1])), 3);
        assert_eq!(CoeffGene::exact().to_string(), "exact");
        assert_eq!(CoeffGene::per_layer(&[2, 1]).to_string(), "2/1");
    }

    #[test]
    fn nearest_context_snaps_by_city_block_distance() {
        let space = SearchSpace {
            tau_values: vec![0.8],
            contexts: vec![
                ContextSpace { gene: CoeffGene::exact(), gates: vec![] },
                ContextSpace { gene: CoeffGene::uniform(2), gates: vec![] },
            ],
        };
        let near = space.nearest_context(CoeffGene::per_layer(&[2, 1])).unwrap();
        assert_eq!(near.gene, CoeffGene::uniform(2));
        let tie = space.nearest_context(CoeffGene::per_layer(&[1, 1])).unwrap();
        assert_eq!(tie.gene, CoeffGene::exact(), "ties fall to the earlier context");
    }
}
