//! Configurable N-dimensional objective spaces over measured designs.
//!
//! Every evaluated [`DesignPoint`] already carries four quality axes —
//! test-set accuracy, printed area, total power and critical-path
//! delay. An [`ObjectiveSet`] selects which of them a search optimizes,
//! fixing each axis's direction (accuracy is maximized, the rest are
//! minimized) and an optional per-axis weight used for normalization
//! and masking. The set is threaded through the whole exploration
//! stack: [`ParetoArchive`](super::ParetoArchive) dominance and
//! hypervolume, [`Nsga2`](super::Nsga2) non-dominated sorting and
//! crowding, and the per-axis statistics surfaced in
//! [`SearchStats`](super::SearchStats).

use crate::DesignPoint;

/// One measurable quality axis of a [`DesignPoint`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Test-set accuracy — the only maximized axis.
    Accuracy,
    /// Printed area in mm² (minimized).
    Area,
    /// Total power in mW (minimized).
    Power,
    /// Critical-path delay in ms (minimized).
    Delay,
}

impl Objective {
    /// Every axis, in the canonical (accuracy, area, power, delay)
    /// order used by the [`ObjectiveSet`] presets.
    pub const ALL: [Objective; 4] =
        [Objective::Accuracy, Objective::Area, Objective::Power, Objective::Delay];

    /// Stable label used in stats, reports and error messages.
    pub fn label(self) -> &'static str {
        match self {
            Objective::Accuracy => "accuracy",
            Objective::Area => "area_mm2",
            Objective::Power => "power_mw",
            Objective::Delay => "delay_ms",
        }
    }

    /// `true` when larger values are better (only accuracy).
    pub fn maximize(self) -> bool {
        matches!(self, Objective::Accuracy)
    }

    /// The raw measured value of this axis.
    pub fn value(self, p: &DesignPoint) -> f64 {
        match self {
            Objective::Accuracy => p.accuracy,
            Objective::Area => p.area_mm2,
            Objective::Power => p.power_mw,
            Objective::Delay => p.critical_ms,
        }
    }

    /// The canonical minimization-space value: maximized axes are
    /// negated (an exact operation), so "smaller is better" holds on
    /// every axis and dominance is one componentwise comparison.
    pub fn key(self, p: &DesignPoint) -> f64 {
        self.canonical(self.value(p))
    }

    /// Maps a raw axis value into minimization space.
    pub fn canonical(self, v: f64) -> f64 {
        if self.maximize() {
            -v
        } else {
            v
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One axis of an [`ObjectiveSet`]: the objective plus its weight.
///
/// The weight does two jobs: `0.0` **masks** the axis out entirely (it
/// stops counting for dominance, hypervolume and crowding — the set
/// behaves exactly like one declared without the axis), and any other
/// positive value scales the axis's extent-normalized contribution to
/// the NSGA-II crowding distance (per-axis normalization pressure).
/// Dominance and hypervolume are weight-independent for enabled axes.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveAxis {
    /// Which measured quantity this axis reads.
    pub objective: Objective,
    /// `0.0` disables the axis; positive values scale its crowding
    /// contribution (default `1.0`).
    pub weight: f64,
}

/// A selectable subset of the measured axes, with per-axis direction
/// and normalization — the objective space an exploration optimizes.
///
/// # Examples
///
/// ```
/// use pax_core::explore::{Objective, ObjectiveSet};
/// use pax_core::{DesignPoint, Technique};
///
/// let p = |acc: f64, area: f64, power: f64| DesignPoint {
///     technique: Technique::Cross,
///     tau_c: None,
///     phi_c: None,
///     coeff: None,
///     accuracy: acc,
///     area_mm2: area,
///     power_mw: power,
///     gate_count: 0,
///     critical_ms: 1.0,
/// };
///
/// // 3-D: accuracy ↑ × area ↓ × power ↓.
/// let objectives = ObjectiveSet::accuracy_area_power();
/// assert_eq!(objectives.dim(), 3);
/// let a = p(0.9, 100.0, 10.0);
/// let b = p(0.9, 100.0, 12.0);
/// assert!(objectives.dominates(&a, &b), "same accuracy/area, less power");
/// // In plain 2-D the power axis is invisible and the points tie.
/// assert!(!ObjectiveSet::accuracy_area().dominates(&a, &b));
///
/// // Masking a 4-D set down to 2-D behaves exactly like the 2-D set.
/// let masked = ObjectiveSet::all().mask(&[true, true, false, false]);
/// assert_eq!(masked.dim(), 2);
/// assert_eq!(masked.labels(), ObjectiveSet::accuracy_area().labels());
/// # let _ = Objective::Accuracy;
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ObjectiveSet {
    axes: Vec<ObjectiveAxis>,
}

impl Default for ObjectiveSet {
    /// The paper's objective space: accuracy ↑ × area ↓.
    fn default() -> Self {
        Self::accuracy_area()
    }
}

impl ObjectiveSet {
    /// A set over the given axes (weight `1.0` each), in the given
    /// order.
    ///
    /// # Panics
    ///
    /// Panics when `objectives` is empty or contains a duplicate axis.
    pub fn new(objectives: &[Objective]) -> Self {
        assert!(!objectives.is_empty(), "an objective set needs at least one axis");
        for (i, o) in objectives.iter().enumerate() {
            assert!(!objectives[..i].contains(o), "duplicate objective axis {o}");
        }
        Self {
            axes: objectives.iter().map(|&o| ObjectiveAxis { objective: o, weight: 1.0 }).collect(),
        }
    }

    /// The paper's 2-D space: accuracy ↑ × area ↓ (the default).
    pub fn accuracy_area() -> Self {
        Self::new(&[Objective::Accuracy, Objective::Area])
    }

    /// 3-D: accuracy ↑ × area ↓ × power ↓.
    pub fn accuracy_area_power() -> Self {
        Self::new(&[Objective::Accuracy, Objective::Area, Objective::Power])
    }

    /// The full 4-D space: accuracy ↑ × area ↓ × power ↓ × delay ↓.
    pub fn all() -> Self {
        Self::new(&Objective::ALL)
    }

    /// Replaces the per-axis weights. `0.0` masks an axis out;
    /// positive values scale its crowding-distance contribution.
    ///
    /// # Panics
    ///
    /// Panics when `weights` does not match the declared axis count,
    /// contains a negative or non-finite value, or would disable every
    /// axis.
    pub fn with_weights(mut self, weights: &[f64]) -> Self {
        assert_eq!(weights.len(), self.axes.len(), "one weight per declared axis");
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0),
            "weights must be finite and non-negative"
        );
        assert!(weights.iter().any(|w| *w > 0.0), "at least one axis must stay enabled");
        for (axis, &w) in self.axes.iter_mut().zip(weights) {
            axis.weight = w;
        }
        self
    }

    /// Masks axes by a keep-flag per declared axis — `false` sets the
    /// weight to `0.0`, `true` leaves it unchanged.
    ///
    /// # Panics
    ///
    /// Panics when `keep` does not match the declared axis count or
    /// would disable every axis.
    pub fn mask(mut self, keep: &[bool]) -> Self {
        assert_eq!(keep.len(), self.axes.len(), "one flag per declared axis");
        for (axis, &k) in self.axes.iter_mut().zip(keep) {
            if !k {
                axis.weight = 0.0;
            }
        }
        assert!(self.axes.iter().any(|a| a.weight > 0.0), "at least one axis must stay enabled");
        self
    }

    /// Every declared axis, including masked ones.
    pub fn axes(&self) -> &[ObjectiveAxis] {
        &self.axes
    }

    /// The enabled (weight > 0) axes, in declaration order.
    pub fn enabled(&self) -> impl Iterator<Item = &ObjectiveAxis> {
        self.axes.iter().filter(|a| a.weight > 0.0)
    }

    /// Number of enabled axes — the dimensionality of the space.
    pub fn dim(&self) -> usize {
        self.enabled().count()
    }

    /// Labels of the enabled axes.
    pub fn labels(&self) -> Vec<&'static str> {
        self.enabled().map(|a| a.objective.label()).collect()
    }

    /// Raw measured values of the enabled axes.
    pub fn values(&self, p: &DesignPoint) -> Vec<f64> {
        self.enabled().map(|a| a.objective.value(p)).collect()
    }

    /// Canonical minimization-space values of the enabled axes —
    /// smaller is better on every component.
    pub fn keys(&self, p: &DesignPoint) -> Vec<f64> {
        self.enabled().map(|a| a.objective.key(p)).collect()
    }

    /// Maps a raw reference point (enabled-axis order, raw units) into
    /// minimization space.
    ///
    /// # Panics
    ///
    /// Panics when `ref_point` does not have [`ObjectiveSet::dim`]
    /// components.
    pub fn canonical_ref(&self, ref_point: &[f64]) -> Vec<f64> {
        assert_eq!(ref_point.len(), self.dim(), "reference point must match the dimensionality");
        self.enabled().zip(ref_point).map(|(a, &r)| a.objective.canonical(r)).collect()
    }

    /// `true` if `a` dominates `b` over the enabled axes: at least as
    /// good on all of them and strictly better on one. Reduces to
    /// [`DesignPoint::dominates`] for the default (accuracy, area) set.
    pub fn dominates(&self, a: &DesignPoint, b: &DesignPoint) -> bool {
        let mut strict = false;
        for axis in self.enabled() {
            let (ka, kb) = (axis.objective.key(a), axis.objective.key(b));
            if ka > kb {
                return false;
            }
            strict |= ka < kb;
        }
        strict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Technique;

    fn p(acc: f64, area: f64, power: f64, delay: f64) -> DesignPoint {
        DesignPoint {
            technique: Technique::Cross,
            tau_c: None,
            phi_c: None,
            coeff: None,
            accuracy: acc,
            area_mm2: area,
            power_mw: power,
            gate_count: 0,
            critical_ms: delay,
        }
    }

    #[test]
    fn default_set_matches_design_point_dominance() {
        let objectives = ObjectiveSet::default();
        let cases = [
            (p(0.9, 100.0, 5.0, 1.0), p(0.8, 100.0, 1.0, 9.0)),
            (p(0.9, 90.0, 0.0, 0.0), p(0.9, 100.0, 0.0, 0.0)),
            (p(0.9, 100.0, 0.0, 0.0), p(0.9, 100.0, 0.0, 0.0)),
            (p(0.95, 110.0, 0.0, 0.0), p(0.9, 100.0, 0.0, 0.0)),
        ];
        for (a, b) in &cases {
            assert_eq!(objectives.dominates(a, b), a.dominates(b));
            assert_eq!(objectives.dominates(b, a), b.dominates(a));
        }
    }

    #[test]
    fn higher_dims_see_more_axes() {
        let a = p(0.9, 100.0, 10.0, 5.0);
        let b = p(0.9, 100.0, 10.0, 7.0);
        assert!(!ObjectiveSet::accuracy_area_power().dominates(&a, &b), "delay invisible in 3-D");
        assert!(ObjectiveSet::all().dominates(&a, &b), "4-D sees the delay edge");
    }

    #[test]
    fn masking_reduces_to_the_smaller_set() {
        let masked = ObjectiveSet::all().with_weights(&[1.0, 1.0, 0.0, 0.0]);
        assert_eq!(masked.dim(), 2);
        assert_eq!(masked.labels(), vec!["accuracy", "area_mm2"]);
        let a = p(0.9, 100.0, 99.0, 99.0);
        let b = p(0.9, 101.0, 1.0, 1.0);
        assert!(masked.dominates(&a, &b), "masked power/delay cannot save b");
        assert_eq!(masked.keys(&a), ObjectiveSet::accuracy_area().keys(&a));
    }

    #[test]
    fn keys_negate_only_maximized_axes() {
        let x = p(0.75, 40.0, 3.0, 2.0);
        assert_eq!(ObjectiveSet::all().keys(&x), vec![-0.75, 40.0, 3.0, 2.0]);
        assert_eq!(ObjectiveSet::all().values(&x), vec![0.75, 40.0, 3.0, 2.0]);
        assert_eq!(
            ObjectiveSet::all().canonical_ref(&[0.0, 50.0, 5.0, 4.0]),
            vec![0.0, 50.0, 5.0, 4.0]
        );
        assert_eq!(ObjectiveSet::accuracy_area().canonical_ref(&[0.5, 50.0]), vec![-0.5, 50.0]);
    }

    #[test]
    #[should_panic(expected = "duplicate objective axis")]
    fn duplicate_axes_are_rejected() {
        let _ = ObjectiveSet::new(&[Objective::Area, Objective::Area]);
    }

    #[test]
    #[should_panic(expected = "at least one axis must stay enabled")]
    fn fully_masked_sets_are_rejected() {
        let _ = ObjectiveSet::accuracy_area().mask(&[false, false]);
    }
}
