//! Seeded, generational NSGA-II-style evolutionary search over the
//! cross-layer genome.
//!
//! Related work (Afentaki et al., Mrazek et al. — see `PAPERS.md`)
//! shows evolutionary search over the joint algorithm/logic knob space
//! finding better accuracy-vs-area fronts than grid sweeps at a
//! fraction of the evaluations. This strategy searches the
//! [`Candidate`] genome — base-circuit choice plus a *continuous* τc
//! gene and a φc gene — so it can reach pruned-gate sets that sit
//! between the paper's 20 fixed τc steps. Selection (non-dominated
//! sorting and crowding) ranks candidates on the engine's
//! [`ObjectiveSet`], so the same strategy drives 2-, 3- and
//! 4-objective studies.
//!
//! Determinism: every stochastic step draws from one `StdRng` seeded by
//! [`Nsga2Config::seed`]; the `PAX_SEARCH_SEED` environment variable
//! overrides the configured seed (same pattern as `PAX_PROPTEST_SEED`),
//! so a logged run reproduces exactly from its command line.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use super::{Candidate, CoeffGene, ContextSpace, ObjectiveSet, SearchSpace, SearchStrategy};
use crate::error::StudyError;
use crate::DesignPoint;

/// Configuration of the evolutionary search.
#[derive(Debug, Clone, PartialEq)]
pub struct Nsga2Config {
    /// Population size per generation.
    pub population: usize,
    /// Maximum number of generations (the evaluation budget usually
    /// binds first).
    pub generations: usize,
    /// Budget of *fresh* (non-cached) candidate evaluations; 0 means
    /// unlimited. Cache hits — re-discovering an already-measured
    /// pruned-gate set — are free, matching how the exhaustive grid
    /// counts only distinct prunings.
    pub max_evals: usize,
    /// Probability of crossing two parents (otherwise the fitter parent
    /// is cloned before mutation).
    pub crossover_prob: f64,
    /// Per-gene mutation probability.
    pub mutation_prob: f64,
    /// RNG seed; overridden by the `PAX_SEARCH_SEED` environment
    /// variable when set.
    pub seed: u64,
}

impl Default for Nsga2Config {
    fn default() -> Self {
        Self {
            population: 24,
            generations: 40,
            max_evals: 256,
            crossover_prob: 0.9,
            mutation_prob: 0.35,
            seed: 0x5EA2C4,
        }
    }
}

/// Resolves the effective seed: `PAX_SEARCH_SEED` when set and
/// parsable, the configured seed otherwise.
pub fn resolve_seed(configured: u64) -> u64 {
    resolve_seed_from(std::env::var("PAX_SEARCH_SEED").ok().as_deref(), configured)
}

/// [`resolve_seed`] with the environment lookup injected — tests use
/// this directly so they never mutate process-wide environment state
/// (which would race with parallel test threads reading the variable).
fn resolve_seed_from(var: Option<&str>, configured: u64) -> u64 {
    var.and_then(|s| s.trim().parse().ok()).unwrap_or(configured)
}

/// One ranked individual of the current parent population.
#[derive(Debug, Clone)]
struct Individual {
    cand: Candidate,
    point: DesignPoint,
    rank: usize,
    crowding: f64,
}

/// The NSGA-II-style strategy: tournament selection on (rank, crowding
/// distance), uniform crossover, per-gene mutation, elitist
/// environmental selection over parents ∪ offspring, plus a memetic
/// touch — each generation first probes the unvisited τ/φ neighbours
/// of the current front before breeding fills the rest of the batch.
#[derive(Debug)]
pub struct Nsga2 {
    cfg: Nsga2Config,
    rng: StdRng,
    parents: Vec<Individual>,
    generation: usize,
    /// Genomes already emitted (exact τ bits), so refinement probes
    /// never re-ask a visited neighbour.
    emitted: std::collections::HashSet<(CoeffGene, u64, i64)>,
    /// Highest-accuracy evaluated genome per context (coeff gene →
    /// `(accuracy, genome)`): the zero-loss pruning boundary each
    /// context's refinement hunts, even when another context dominates
    /// it area-wise.
    best_acc: Vec<(CoeffGene, f64, Candidate)>,
    /// Zero-loss boundary searches (one per context × strong φ level):
    /// binary searches along the gate-τ knee axis for the most
    /// aggressive pruning that keeps the context's best accuracy — the
    /// designs the paper's Table II selects.
    boundaries: Vec<Boundary>,
    /// Warm-start genomes injected into generation 0
    /// ([`Nsga2::with_seed_front`]); drained on the first `ask`.
    seeds: Vec<Candidate>,
}

/// State of one accuracy-preserving τ-boundary binary search.
#[derive(Debug)]
struct Boundary {
    gene: CoeffGene,
    phi: i64,
    /// Knee-index window still to search (`lo..=hi`).
    lo: usize,
    hi: usize,
    /// The probe in flight: `(knee index, genome)`.
    pending: Option<(usize, Candidate)>,
    done: bool,
}

impl Nsga2 {
    /// Creates the strategy, resolving the seed through
    /// [`resolve_seed`].
    pub fn new(cfg: Nsga2Config) -> Self {
        assert!(cfg.population >= 2, "population must hold at least two parents");
        let rng = StdRng::seed_from_u64(resolve_seed(cfg.seed));
        Self {
            cfg,
            rng,
            parents: Vec::new(),
            generation: 0,
            emitted: std::collections::HashSet::new(),
            best_acc: Vec::new(),
            boundaries: Vec::new(),
            seeds: Vec::new(),
        }
    }

    /// Warm-starts the search with a previously found front: every
    /// design point that records its pruning genome (τc and φc; the
    /// coefficient gene defaults to exact when untracked, matching how
    /// exact-base points drop it) re-enters generation 0 ahead of the
    /// cold-start sweep, repaired into the new search space — a seed
    /// from another run's context set snaps to the nearest gene here.
    /// Points without a genome (e.g. baseline measurements) are
    /// skipped. Evaluation caching makes re-offering an already-known
    /// design free, so seeding can only sharpen generation 0.
    #[must_use]
    pub fn with_seed_front(mut self, front: &[DesignPoint]) -> Self {
        self.seeds = front
            .iter()
            .filter_map(|p| {
                Some(Candidate {
                    coeff: p.coeff.unwrap_or_else(CoeffGene::exact),
                    tau_c: p.tau_c?,
                    phi_c: p.phi_c?,
                })
            })
            .collect();
        self
    }

    fn context_knees(space: &SearchSpace, gene: CoeffGene) -> Vec<f64> {
        let (lo, hi) = space.tau_bounds();
        space
            .context(gene)
            .map(|ctx| ctx.distinct_taus().into_iter().filter(|t| (lo..=hi).contains(t)).collect())
            .unwrap_or_default()
    }

    fn init_boundaries(&mut self, space: &SearchSpace) {
        for ctx in &space.contexts {
            let knees = Self::context_knees(space, ctx.gene);
            if knees.is_empty() {
                continue;
            }
            let phis = ctx.distinct_phis();
            let mut levels = vec![*phis.last().expect("non-empty")];
            if phis.len() > 1 {
                levels.push(phis[phis.len() - 2]);
            }
            for phi in levels {
                self.boundaries.push(Boundary {
                    gene: ctx.gene,
                    phi,
                    lo: 0,
                    hi: knees.len() - 1,
                    pending: None,
                    done: false,
                });
            }
        }
    }

    /// One probe per in-flight boundary search: the midpoint of the
    /// remaining knee window (or the converged boundary itself).
    fn boundary_probes(&mut self, space: &SearchSpace) -> Vec<Candidate> {
        let mut probes = Vec::new();
        for b in &mut self.boundaries {
            if b.done || b.pending.is_some() {
                continue;
            }
            let knees = Self::context_knees(space, b.gene);
            if knees.is_empty() {
                b.done = true;
                continue;
            }
            let mid = if b.lo < b.hi { (b.lo + b.hi) / 2 } else { b.lo };
            let cand =
                Candidate { coeff: b.gene, tau_c: knees[mid.min(knees.len() - 1)], phi_c: b.phi };
            b.pending = Some((mid, cand));
            if b.lo >= b.hi {
                b.done = true; // final visit of the converged boundary
            }
            probes.push(cand);
        }
        probes
    }

    fn advance_boundaries(&mut self, results: &[(Candidate, DesignPoint)]) {
        for b in &mut self.boundaries {
            let Some((mid, cand)) = b.pending else { continue };
            let Some((_, point)) = results.iter().find(|(c, _)| *c == cand) else {
                // Probe truncated by the budget; retry next generation.
                b.pending = None;
                continue;
            };
            let target = self
                .best_acc
                .iter()
                .find(|(gene, _, _)| *gene == b.gene)
                .map_or(f64::NEG_INFINITY, |&(_, acc, _)| acc);
            if point.accuracy >= target - 1e-9 {
                // Zero loss at this knee: everything above keeps it too,
                // so search the more aggressive half.
                b.hi = mid;
            } else {
                b.lo = (mid + 1).min(b.hi);
            }
            b.pending = None;
        }
    }

    fn mark_emitted(&mut self, c: &Candidate) -> bool {
        self.emitted.insert((c.coeff, c.tau_c.to_bits(), c.phi_c))
    }

    /// The τ/φ neighbours of a genome: the adjacent gate-τ knee points
    /// at the same φ, and the adjacent significance levels at the same
    /// τ — the four moves that walk along a front.
    fn neighbors(c: Candidate, space: &SearchSpace) -> Vec<Candidate> {
        let Some(ctx) = space.context(c.coeff) else { return Vec::new() };
        let (lo, hi) = space.tau_bounds();
        let mut out = Vec::with_capacity(4);
        // φ moves first: stepping a significance level changes the
        // pruned set far more than one τ knee, so these probes carry
        // the most front-extension value per evaluation.
        let phis = ctx.distinct_phis();
        let idx = phis.partition_point(|&p| p < c.phi_c).min(phis.len() - 1);
        for nb in [idx.saturating_sub(1), (idx + 1).min(phis.len() - 1)] {
            if phis[nb] != c.phi_c {
                out.push(Candidate { phi_c: phis[nb], ..c });
            }
        }
        let taus: Vec<f64> =
            ctx.distinct_taus().into_iter().filter(|t| (lo..=hi).contains(t)).collect();
        if !taus.is_empty() {
            let idx = taus.partition_point(|&t| t < c.tau_c).min(taus.len() - 1);
            for nb in [idx.saturating_sub(1), (idx + 1).min(taus.len() - 1)] {
                if (taus[nb] - c.tau_c).abs() > f64::EPSILON {
                    out.push(Candidate { tau_c: taus[nb], ..c });
                }
            }
        }
        out
    }

    /// The configuration in use.
    pub fn config(&self) -> &Nsga2Config {
        &self.cfg
    }

    fn random_candidate(&mut self, space: &SearchSpace) -> Candidate {
        let ctx = &space.contexts[self.rng.random_range(0..space.contexts.len())];
        let (lo, hi) = space.tau_bounds();
        let tau_c = if lo < hi { self.rng.random_range(lo..hi) } else { lo };
        let phis = ctx.distinct_phis();
        let phi_c = phis[self.rng.random_range(0..phis.len())];
        Candidate { coeff: ctx.gene, tau_c, phi_c }
    }

    /// Initial population: per context a τ-quantile sweep at maximal
    /// pruning (φc at the top significance level — where the
    /// area/accuracy trade-off actually lives), the two sweep extremes,
    /// and random genomes for diversity. The sweep τs come from the
    /// gates' own τ values, so the very first generation already visits
    /// knee points the fixed grid steps straddle.
    fn initial_population(&mut self, space: &SearchSpace) -> Vec<Candidate> {
        let mut pop = Vec::with_capacity(self.cfg.population);
        // Warm-start seeds lead generation 0, repaired into this
        // space; the closing truncation drops sweep filler before it
        // ever reaches them.
        for seed in std::mem::take(&mut self.seeds) {
            let c = Self::repair(seed, space);
            if !pop.contains(&c) {
                pop.push(c);
            }
        }
        let (lo, hi) = space.tau_bounds();
        // Most of the first generation goes to the sweep; one extreme
        // per context and a couple of random genomes fill the rest.
        let n_ctx = space.contexts.len();
        let per_ctx = (self.cfg.population.saturating_sub(2 * n_ctx) / n_ctx).max(2);
        for ctx in &space.contexts {
            let phis = ctx.distinct_phis();
            let phi_max = *phis.last().expect("distinct_phis is never empty");
            let phi_2nd = phis[phis.len().saturating_sub(2)];
            let knees: Vec<f64> =
                ctx.distinct_taus().into_iter().filter(|t| (lo..=hi).contains(t)).collect();
            for i in 0..per_ctx {
                let frac = i as f64 / per_ctx.saturating_sub(1).max(1) as f64;
                let tau_c = if knees.is_empty() {
                    lo + (hi - lo) * frac
                } else {
                    knees[((knees.len() - 1) as f64 * frac).round() as usize]
                };
                // Alternate the two strongest pruning levels along the
                // sweep: most fronts live on them.
                let phi_c = if i % 2 == 0 { phi_max } else { phi_2nd };
                pop.push(Candidate { coeff: ctx.gene, tau_c, phi_c });
            }
            pop.push(Candidate { coeff: ctx.gene, tau_c: hi, phi_c: phis[0] });
        }
        while pop.len() < self.cfg.population {
            let c = self.random_candidate(space);
            pop.push(c);
        }
        pop.truncate(self.cfg.population);
        pop
    }

    fn tournament(&mut self) -> Candidate {
        let a = self.rng.random_range(0..self.parents.len());
        let b = self.rng.random_range(0..self.parents.len());
        let (ia, ib) = (&self.parents[a], &self.parents[b]);
        if (ia.rank, -ia.crowding) <= (ib.rank, -ib.crowding) {
            ia.cand
        } else {
            ib.cand
        }
    }

    fn crossover(&mut self, a: Candidate, b: Candidate) -> Candidate {
        // Uniform per-gene exchange.
        Candidate {
            coeff: if self.rng.random::<bool>() { a.coeff } else { b.coeff },
            tau_c: if self.rng.random::<bool>() { a.tau_c } else { b.tau_c },
            phi_c: if self.rng.random::<bool>() { a.phi_c } else { b.phi_c },
        }
    }

    /// Resolves a genome's context, snapping a foreign coeff gene onto
    /// the nearest context the space actually has. [`SearchSpace::require`]
    /// surfaces the miss as a typed [`StudyError::MissingContext`] — the
    /// degrade-into-repair path that replaced the old
    /// `expect("genome stays inside the space")` panic, so a warm-started
    /// or crossover-mixed genome can never abort the study.
    fn resolve_context<'s>(c: &mut Candidate, space: &'s SearchSpace) -> Option<&'s ContextSpace> {
        match space.require(c.coeff) {
            Ok(ctx) => Some(ctx),
            Err(StudyError::MissingContext { .. }) => {
                let ctx = space.nearest_context(c.coeff)?;
                c.coeff = ctx.gene;
                Some(ctx)
            }
            Err(_) => None,
        }
    }

    fn mutate(&mut self, mut c: Candidate, space: &SearchSpace) -> Candidate {
        if space.contexts.len() > 1 && self.rng.random::<f64>() < self.cfg.mutation_prob {
            // Hop to another context's gene — the cross-layer move that
            // trades coefficient width against pruning aggressiveness.
            let others: Vec<CoeffGene> =
                space.contexts.iter().map(|x| x.gene).filter(|g| *g != c.coeff).collect();
            if !others.is_empty() {
                c.coeff = others[self.rng.random_range(0..others.len())];
            }
        }
        let Some(ctx) = Self::resolve_context(&mut c, space) else { return c };
        if self.rng.random::<f64>() < self.cfg.mutation_prob {
            let (lo, hi) = space.tau_bounds();
            // Snap to a *nearby* gate τ: thresholds between two gate τ
            // values select identical sets, so the gates' own τs are the
            // knee points of the space — including ones the fixed grid
            // steps straddle. Staying local keeps the move exploitative.
            // A gate-free context has no knees, so it always takes the
            // continuous move (the snap arm used to `clamp(0, -1)` and
            // panic there).
            let taus = ctx.distinct_taus();
            c.tau_c = if !taus.is_empty() && self.rng.random::<bool>() {
                let idx = taus.partition_point(|&t| t < c.tau_c).min(taus.len() - 1);
                let jump = self.rng.random_range(-2i64..=2) as isize;
                let nb = (idx as isize + jump).clamp(0, taus.len() as isize - 1) as usize;
                taus[nb].clamp(lo, hi)
            } else {
                (c.tau_c + self.rng.random_range(-0.02..0.02)).clamp(lo, hi)
            };
        }
        if self.rng.random::<f64>() < self.cfg.mutation_prob {
            let phis = ctx.distinct_phis();
            let idx = phis.partition_point(|&p| p < c.phi_c).min(phis.len() - 1);
            c.phi_c = if self.rng.random::<f64>() < 0.75 {
                // Step to a neighbouring significance level — the
                // exploitative move fronts are refined with.
                if self.rng.random::<bool>() {
                    phis[(idx + 1).min(phis.len() - 1)]
                } else {
                    phis[idx.saturating_sub(1)]
                }
            } else {
                phis[self.rng.random_range(0..phis.len())]
            };
        }
        c
    }

    /// Repairs a genome after crossover mixed genes across contexts:
    /// the coeff gene snaps to the nearest context the space holds, τc
    /// clamps to the configured bounds, φc snaps to the nearest
    /// significance level its context actually has.
    fn repair(mut c: Candidate, space: &SearchSpace) -> Candidate {
        let (lo, hi) = space.tau_bounds();
        let Some(ctx) = Self::resolve_context(&mut c, space) else { return c };
        let phis = ctx.distinct_phis();
        let pos = phis.partition_point(|&p| p < c.phi_c);
        let phi_c = if pos == phis.len() {
            phis[pos - 1]
        } else if pos == 0 || phis[pos] - c.phi_c <= c.phi_c - phis[pos - 1] {
            phis[pos]
        } else {
            phis[pos - 1]
        };
        Candidate { coeff: c.coeff, tau_c: c.tau_c.clamp(lo, hi), phi_c }
    }

    fn offspring(&mut self, space: &SearchSpace) -> Vec<Candidate> {
        let mut batch = Vec::with_capacity(self.cfg.population);
        // Zero-loss boundary searches drive first: one binary-search
        // probe per boundary per generation.
        if self.boundaries.is_empty() {
            self.init_boundaries(space);
        }
        for c in self.boundary_probes(space) {
            self.mark_emitted(&c);
            batch.push(c);
        }
        // Memetic refinement next: walk the unvisited τ/φ neighbours
        // of the current front — plus each context's accuracy champion,
        // whose surroundings hold the minimum-area-at-zero-loss designs
        // the paper's Table II selects — before breeding fills the rest.
        let mut front: Vec<Candidate> = self.best_acc.iter().map(|&(_, _, c)| c).collect();
        front.extend(self.parents.iter().filter(|i| i.rank == 0).map(|i| i.cand));
        // Breadth-first over the front: every member's best (φ) moves
        // before anyone's second-tier (τ) moves.
        let probes: Vec<Vec<Candidate>> =
            front.iter().map(|c| Self::neighbors(*c, space)).collect();
        let cap = (self.cfg.population * 3 / 4).max(batch.len());
        'probe: for round in 0..probes.iter().map(Vec::len).max().unwrap_or(0) {
            for nbs in &probes {
                if let Some(nb) = nbs.get(round) {
                    if self.mark_emitted(nb) {
                        batch.push(*nb);
                        if batch.len() >= cap {
                            break 'probe;
                        }
                    }
                }
            }
        }
        while batch.len() < self.cfg.population {
            let a = self.tournament();
            let child = if self.rng.random::<f64>() < self.cfg.crossover_prob {
                let b = self.tournament();
                self.crossover(a, b)
            } else {
                a
            };
            let child = Self::repair(self.mutate(child, space), space);
            self.mark_emitted(&child);
            batch.push(child);
        }
        batch
    }
}

impl SearchStrategy for Nsga2 {
    fn name(&self) -> &str {
        "nsga2"
    }

    fn budget(&self) -> Option<usize> {
        (self.cfg.max_evals > 0).then_some(self.cfg.max_evals)
    }

    fn ask(&mut self, space: &SearchSpace) -> Vec<Candidate> {
        if self.generation >= self.cfg.generations {
            return Vec::new();
        }
        self.generation += 1;
        if self.parents.is_empty() {
            let pop = self.initial_population(space);
            for c in &pop {
                self.mark_emitted(c);
            }
            pop
        } else {
            self.offspring(space)
        }
    }

    fn tell(&mut self, results: &[(Candidate, DesignPoint)], objectives: &ObjectiveSet) {
        for (c, p) in results {
            match self.best_acc.iter_mut().find(|(gene, _, _)| *gene == c.coeff) {
                Some(entry) if entry.1 >= p.accuracy => {}
                Some(entry) => *entry = (c.coeff, p.accuracy, *c),
                None => self.best_acc.push((c.coeff, p.accuracy, *c)),
            }
        }
        self.advance_boundaries(results);
        let mut pool: Vec<(Candidate, DesignPoint)> =
            self.parents.iter().map(|i| (i.cand, i.point.clone())).collect();
        pool.extend(results.iter().cloned());
        self.parents = environmental_selection(pool, self.cfg.population, objectives);
    }
}

/// Elitist truncation: fast non-dominated sort, fill by rank, break the
/// last front by descending crowding distance. Fully deterministic —
/// all ties fall back to pool order.
fn environmental_selection(
    pool: Vec<(Candidate, DesignPoint)>,
    keep: usize,
    objectives: &ObjectiveSet,
) -> Vec<Individual> {
    let ranks = non_dominated_ranks(&pool, objectives);
    let mut by_front: Vec<Vec<usize>> = Vec::new();
    for (i, &r) in ranks.iter().enumerate() {
        if by_front.len() <= r {
            by_front.resize(r + 1, Vec::new());
        }
        by_front[r].push(i);
    }
    let mut selected = Vec::with_capacity(keep);
    for (rank, front) in by_front.iter().enumerate() {
        let crowding = crowding_distances(&pool, front, objectives);
        let mut members: Vec<(usize, f64)> = front.iter().copied().zip(crowding).collect();
        if selected.len() + members.len() > keep {
            members.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite crowding"));
            members.truncate(keep - selected.len());
        }
        for (idx, crowding) in members {
            selected.push(Individual {
                cand: pool[idx].0,
                point: pool[idx].1.clone(),
                rank,
                crowding,
            });
        }
        if selected.len() >= keep {
            break;
        }
    }
    selected
}

/// Rank of each pool member under the objective space's dominance: 0
/// for the non-dominated front, 1 for the front once rank-0 is
/// removed, and so on.
fn non_dominated_ranks(pool: &[(Candidate, DesignPoint)], objectives: &ObjectiveSet) -> Vec<usize> {
    let n = pool.len();
    let mut rank = vec![usize::MAX; n];
    let mut assigned = 0;
    let mut current = 0;
    while assigned < n {
        // Peel one front: unassigned points no *unassigned* point
        // dominates. Collected before assigning so the peel works on a
        // consistent snapshot.
        let front: Vec<usize> = (0..n)
            .filter(|&i| rank[i] == usize::MAX)
            .filter(|&i| {
                !(0..n).any(|j| {
                    j != i && rank[j] == usize::MAX && objectives.dominates(&pool[j].1, &pool[i].1)
                })
            })
            .collect();
        for &i in &front {
            rank[i] = current;
        }
        assigned += front.len();
        current += 1;
    }
    rank
}

/// NSGA-II crowding distance within one front: every enabled objective
/// axis, normalized by the front's extent and scaled by the axis
/// weight (`1.0` weights leave the contribution bit-identical to the
/// unweighted sum). Boundary points get `f64::INFINITY`.
fn crowding_distances(
    pool: &[(Candidate, DesignPoint)],
    front: &[usize],
    objectives: &ObjectiveSet,
) -> Vec<f64> {
    let m = front.len();
    if m <= 2 {
        return vec![f64::INFINITY; m];
    }
    let mut dist = vec![0.0f64; m];
    for axis in objectives.enabled() {
        let value = |i: usize| -> f64 { axis.objective.value(&pool[front[i]].1) };
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            value(a).partial_cmp(&value(b)).expect("finite objective").then(a.cmp(&b))
        });
        let span = value(order[m - 1]) - value(order[0]);
        dist[order[0]] = f64::INFINITY;
        dist[order[m - 1]] = f64::INFINITY;
        if span <= 0.0 {
            continue;
        }
        for w in 1..m - 1 {
            dist[order[w]] += axis.weight * ((value(order[w + 1]) - value(order[w - 1])) / span);
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ContextSpace;
    use crate::Technique;

    fn space() -> SearchSpace {
        SearchSpace {
            tau_values: vec![0.8, 0.9, 0.99],
            contexts: vec![
                ContextSpace {
                    gene: CoeffGene::exact(),
                    gates: vec![(0.82, 0), (0.91, 3), (0.97, 1), (0.99, -1)],
                },
                ContextSpace { gene: CoeffGene::uniform(1), gates: vec![(0.85, 2), (0.93, 0)] },
            ],
        }
    }

    fn point(acc: f64, area: f64) -> DesignPoint {
        DesignPoint {
            technique: Technique::Cross,
            tau_c: None,
            phi_c: None,
            coeff: None,
            accuracy: acc,
            area_mm2: area,
            power_mw: 0.0,
            gate_count: 0,
            critical_ms: 0.0,
        }
    }

    #[test]
    fn generations_are_deterministic_for_a_fixed_seed() {
        let space = space();
        let objectives = ObjectiveSet::default();
        let run = |seed: u64| {
            let mut s = Nsga2::new(Nsga2Config { seed, ..Default::default() });
            let mut all = Vec::new();
            for _ in 0..3 {
                let batch = s.ask(&space);
                let results: Vec<(Candidate, DesignPoint)> = batch
                    .iter()
                    .map(|&c| (c, point(c.tau_c, 100.0 - f64::from(c.phi_c as i32))))
                    .collect();
                s.tell(&results, &objectives);
                all.extend(batch);
            }
            all
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds explore different genomes");
    }

    #[test]
    fn genomes_stay_inside_the_space() {
        let space = space();
        let mut s = Nsga2::new(Nsga2Config { population: 16, ..Default::default() });
        for _ in 0..4 {
            let batch = s.ask(&space);
            let results: Vec<(Candidate, DesignPoint)> = batch
                .iter()
                .map(|&c| (c, point(0.5 + c.tau_c / 10.0, 50.0 + f64::from(c.phi_c as i32))))
                .collect();
            for c in &batch {
                let ctx = space.context(c.coeff).expect("context exists");
                assert!((0.8..=0.99).contains(&c.tau_c), "τc {}", c.tau_c);
                assert!(ctx.distinct_phis().contains(&c.phi_c), "φc {}", c.phi_c);
            }
            s.tell(&results, &ObjectiveSet::default());
        }
    }

    #[test]
    fn ranks_and_crowding_prefer_the_front() {
        let objectives = ObjectiveSet::default();
        let pool = vec![
            (Candidate { coeff: CoeffGene::exact(), tau_c: 0.8, phi_c: 0 }, point(0.9, 50.0)),
            // dominated:
            (Candidate { coeff: CoeffGene::exact(), tau_c: 0.9, phi_c: 0 }, point(0.8, 90.0)),
            (Candidate { coeff: CoeffGene::exact(), tau_c: 0.8, phi_c: 1 }, point(0.95, 80.0)),
        ];
        let ranks = non_dominated_ranks(&pool, &objectives);
        assert_eq!(ranks, vec![0, 1, 0]);
        let sel = environmental_selection(pool, 2, &objectives);
        assert_eq!(sel.len(), 2);
        assert!(sel.iter().all(|i| i.rank == 0));
    }

    #[test]
    fn higher_dimensional_objectives_change_the_ranking() {
        let with_power = |acc: f64, area: f64, power: f64| {
            let mut p = point(acc, area);
            p.power_mw = power;
            p
        };
        let pool = vec![
            (
                Candidate { coeff: CoeffGene::exact(), tau_c: 0.8, phi_c: 0 },
                with_power(0.9, 50.0, 9.0),
            ),
            // Dominated in (accuracy, area), rescued by its power edge.
            (
                Candidate { coeff: CoeffGene::exact(), tau_c: 0.9, phi_c: 0 },
                with_power(0.8, 90.0, 2.0),
            ),
        ];
        assert_eq!(non_dominated_ranks(&pool, &ObjectiveSet::accuracy_area()), vec![0, 1]);
        assert_eq!(non_dominated_ranks(&pool, &ObjectiveSet::accuracy_area_power()), vec![0, 0]);
        // Masking power out of the 3-D set restores the 2-D ranking.
        let masked = ObjectiveSet::accuracy_area_power().mask(&[true, true, false]);
        assert_eq!(non_dominated_ranks(&pool, &masked), vec![0, 1]);
    }

    #[test]
    fn mutation_survives_a_gate_free_context() {
        // Regression: the τ snap move indexed `distinct_taus()` with
        // `clamp(0, len - 1)`, which panicked (`clamp(0, -1)`) whenever
        // a context held no gates. Such contexts are real — a fully
        // saturated model qualifies no gate at any τ — so mutation must
        // fall back to the continuous τ move instead of aborting.
        let space = SearchSpace {
            tau_values: vec![0.8, 0.9, 0.99],
            contexts: vec![
                ContextSpace { gene: CoeffGene::exact(), gates: Vec::new() },
                ContextSpace { gene: CoeffGene::uniform(1), gates: vec![(0.85, 2), (0.93, 0)] },
            ],
        };
        let mut s = Nsga2::new(Nsga2Config { population: 12, ..Default::default() });
        for _ in 0..64 {
            let c = Candidate { coeff: CoeffGene::exact(), tau_c: 0.9, phi_c: -1 };
            let m = s.mutate(c, &space);
            assert!((0.8..=0.99).contains(&m.tau_c), "τc {}", m.tau_c);
        }
        // And the full generational loop stays alive on the same space.
        let objectives = ObjectiveSet::default();
        for _ in 0..3 {
            let batch = s.ask(&space);
            let results: Vec<(Candidate, DesignPoint)> =
                batch.iter().map(|&c| (c, point(c.tau_c, 100.0))).collect();
            s.tell(&results, &objectives);
        }
    }

    #[test]
    fn foreign_genes_degrade_into_repair() {
        // A warm-started genome whose coeff gene the space does not
        // hold used to hit `expect("genome stays inside the space")`.
        // It now snaps to the nearest context instead of panicking.
        let space = space();
        let foreign = Candidate { coeff: CoeffGene::per_layer(&[3, 3]), tau_c: 1.4, phi_c: 99 };
        let repaired = Nsga2::repair(foreign, &space);
        assert_eq!(repaired.coeff, CoeffGene::uniform(1), "snaps to the nearest gene");
        assert!((0.8..=0.99).contains(&repaired.tau_c));
        let ctx = space.context(repaired.coeff).expect("context exists");
        assert!(ctx.distinct_phis().contains(&repaired.phi_c));
        let mut s = Nsga2::new(Nsga2Config::default());
        let mutated = s.mutate(foreign, &space);
        assert!(space.context(mutated.coeff).is_some(), "mutation lands inside the space");
    }

    #[test]
    fn seed_resolution_prefers_the_environment() {
        // Exercised through the injected lookup — mutating the real
        // environment would race with parallel test threads that
        // construct `Nsga2` (and thus read `PAX_SEARCH_SEED`).
        assert_eq!(resolve_seed_from(None, 11), 11);
        assert_eq!(resolve_seed_from(Some("99"), 11), 99);
        assert_eq!(resolve_seed_from(Some(" 99\n"), 11), 99, "whitespace tolerated");
        assert_eq!(resolve_seed_from(Some("not-a-number"), 11), 11);
    }
}
