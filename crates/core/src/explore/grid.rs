//! The paper-faithful exhaustive `(τc, φc)` sweep as a
//! [`SearchStrategy`].

use super::{Candidate, ObjectiveSet, SearchSpace, SearchStrategy};
use crate::DesignPoint;

/// Exhaustive grid search: every configured τc step and, per τc, every
/// relevant φc from the τ-qualified gates' distinct φ values (the
/// paper's Φτ acceleration) — for each base circuit in the space.
///
/// Through the engine this reproduces `enumerate_grid` +
/// `evaluate_grid` exactly: same candidates, same order, one
/// evaluation per distinct pruned-gate set (the engine's cache takes
/// the role of the grid's dedup map).
#[derive(Debug, Default)]
pub struct ExhaustiveGrid {
    emitted: bool,
}

impl ExhaustiveGrid {
    /// A fresh sweep.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SearchStrategy for ExhaustiveGrid {
    fn name(&self) -> &str {
        "exhaustive-grid"
    }

    fn ask(&mut self, space: &SearchSpace) -> Vec<Candidate> {
        if self.emitted {
            return Vec::new();
        }
        self.emitted = true;
        let mut batch = Vec::new();
        for ctx in &space.contexts {
            for &tau_c in &space.tau_values {
                for phi_c in ctx.phis_at(tau_c) {
                    batch.push(Candidate { use_coeff: ctx.use_coeff, tau_c, phi_c });
                }
            }
        }
        batch
    }

    // The sweep is one-shot and unconditional, so feedback — under any
    // objective set — never changes what it asks next.
    fn tell(&mut self, _results: &[(Candidate, DesignPoint)], _objectives: &ObjectiveSet) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ContextSpace;

    #[test]
    fn sweep_emits_once_in_grid_order() {
        let space = SearchSpace {
            tau_values: vec![0.8, 0.9],
            contexts: vec![ContextSpace {
                use_coeff: false,
                gates: vec![(0.85, 2), (0.95, 0), (0.95, 2)],
            }],
        };
        let mut g = ExhaustiveGrid::new();
        let batch = g.ask(&space);
        // τc=0.8 qualifies all gates (φ ∈ {0, 2}); τc=0.9 the two φ∈{0,2}.
        let got: Vec<(f64, i64)> = batch.iter().map(|c| (c.tau_c, c.phi_c)).collect();
        assert_eq!(got, vec![(0.8, 0), (0.8, 2), (0.9, 0), (0.9, 2)]);
        assert!(g.ask(&space).is_empty(), "one-shot strategy");
    }

    #[test]
    fn sweep_covers_every_context() {
        let space = SearchSpace {
            tau_values: vec![0.8],
            contexts: vec![
                ContextSpace { use_coeff: false, gates: vec![(0.9, 1)] },
                ContextSpace { use_coeff: true, gates: vec![(0.9, 4)] },
            ],
        };
        let batch = ExhaustiveGrid::new().ask(&space);
        assert_eq!(batch.len(), 2);
        assert!(!batch[0].use_coeff && batch[1].use_coeff);
    }
}
