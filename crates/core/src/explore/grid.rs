//! The paper-faithful exhaustive `(τc, φc)` sweep as a
//! [`SearchStrategy`].

use super::{Candidate, ObjectiveSet, SearchSpace, SearchStrategy};
use crate::DesignPoint;

/// Exhaustive grid search: every configured τc step and, per τc, every
/// relevant φc from the τ-qualified gates' distinct φ values (the
/// paper's Φτ acceleration) — for each base circuit in the space.
///
/// Through the engine this reproduces `enumerate_grid` +
/// `evaluate_grid` exactly: same candidates, same order, one
/// evaluation per distinct pruned-gate set (the engine's cache takes
/// the role of the grid's dedup map).
#[derive(Debug, Default)]
pub struct ExhaustiveGrid {
    emitted: bool,
}

impl ExhaustiveGrid {
    /// A fresh sweep.
    pub fn new() -> Self {
        Self::default()
    }
}

impl SearchStrategy for ExhaustiveGrid {
    fn name(&self) -> &str {
        "exhaustive-grid"
    }

    fn ask(&mut self, space: &SearchSpace) -> Vec<Candidate> {
        if self.emitted {
            return Vec::new();
        }
        self.emitted = true;
        let mut batch = Vec::new();
        for ctx in &space.contexts {
            let before = batch.len();
            for &tau_c in &space.tau_values {
                for phi_c in ctx.phis_at(tau_c) {
                    batch.push(Candidate { coeff: ctx.gene, tau_c, phi_c });
                }
            }
            if batch.len() == before {
                // No τc qualified a single gate (Φτ empty everywhere):
                // without this the context vanished from the sweep
                // silently. Emit its unpruned baseline at the weakest
                // τc so the front still carries the base circuit.
                if let Some(&tau_c) = space.tau_values.first() {
                    batch.push(Candidate { coeff: ctx.gene, tau_c, phi_c: -1 });
                }
            }
        }
        batch
    }

    // The sweep is one-shot and unconditional, so feedback — under any
    // objective set — never changes what it asks next.
    fn tell(&mut self, _results: &[(Candidate, DesignPoint)], _objectives: &ObjectiveSet) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::{CoeffGene, ContextSpace};

    #[test]
    fn sweep_emits_once_in_grid_order() {
        let space = SearchSpace {
            tau_values: vec![0.8, 0.9],
            contexts: vec![ContextSpace {
                gene: CoeffGene::exact(),
                gates: vec![(0.85, 2), (0.95, 0), (0.95, 2)],
            }],
        };
        let mut g = ExhaustiveGrid::new();
        let batch = g.ask(&space);
        // τc=0.8 qualifies all gates (φ ∈ {0, 2}); τc=0.9 the two φ∈{0,2}.
        let got: Vec<(f64, i64)> = batch.iter().map(|c| (c.tau_c, c.phi_c)).collect();
        assert_eq!(got, vec![(0.8, 0), (0.8, 2), (0.9, 0), (0.9, 2)]);
        assert!(g.ask(&space).is_empty(), "one-shot strategy");
    }

    #[test]
    fn sweep_covers_every_context() {
        let space = SearchSpace {
            tau_values: vec![0.8],
            contexts: vec![
                ContextSpace { gene: CoeffGene::exact(), gates: vec![(0.9, 1)] },
                ContextSpace { gene: CoeffGene::uniform(1), gates: vec![(0.9, 4)] },
            ],
        };
        let batch = ExhaustiveGrid::new().ask(&space);
        assert_eq!(batch.len(), 2);
        assert!(batch[0].coeff.is_exact() && !batch[1].coeff.is_exact());
    }

    #[test]
    fn gate_free_context_still_emits_its_baseline() {
        // Regression: a context whose Φτ was empty at every τc (all
        // gates below the weakest threshold, or no gates at all)
        // produced zero candidates — the base circuit silently dropped
        // out of the study. It now contributes one unpruned baseline
        // point at the weakest τc.
        let space = SearchSpace {
            tau_values: vec![0.8, 0.9],
            contexts: vec![
                ContextSpace { gene: CoeffGene::exact(), gates: vec![(0.85, 2)] },
                // Every gate sits below τc=0.8, so no τc qualifies any.
                ContextSpace { gene: CoeffGene::uniform(1), gates: vec![(0.5, 1), (0.7, 3)] },
                ContextSpace { gene: CoeffGene::uniform(2), gates: Vec::new() },
            ],
        };
        let batch = ExhaustiveGrid::new().ask(&space);
        let approx: Vec<&Candidate> =
            batch.iter().filter(|c| c.coeff == CoeffGene::uniform(1)).collect();
        assert_eq!(approx.len(), 1, "exactly one baseline point");
        assert_eq!((approx[0].tau_c, approx[0].phi_c), (0.8, -1));
        let empty: Vec<&Candidate> =
            batch.iter().filter(|c| c.coeff == CoeffGene::uniform(2)).collect();
        assert_eq!(empty.len(), 1);
        assert_eq!((empty[0].tau_c, empty[0].phi_c), (0.8, -1));
    }
}
