//! The evaluation-fabric seam: how candidate evaluation rides an
//! external worker pool.
//!
//! `pax-serve` owns the production worker pool (sharded, work-stealing,
//! backpressured); this crate owns the evaluator. The two meet through
//! [`EvalFabric`], a minimal submit-only trait defined *here* so the
//! dependency keeps pointing one way (`pax-serve` depends on
//! `pax-core`, never the reverse): the serve engine's per-study tenant
//! handle implements it, and
//! [`Evaluator::with_fabric`](super::Evaluator::with_fabric) routes
//! every fresh evaluation through whatever implementation it is given.
//!
//! A [`FabricJob`] is a fully-owned unit of work — the evaluator ships
//! each candidate as a closure over an `Arc`'d owned overlay context
//! (a compiled tape + a packed stimulus), so jobs are `'static` and the
//! pool's long-lived worker threads can run them without borrowing the
//! study's stack. Completion is signalled by the job itself (the
//! evaluator's jobs send their result over a channel); a dropped,
//! never-run job therefore surfaces as a closed channel, which the
//! evaluator reports as [`FabricError::Cancelled`] instead of hanging.

/// One fully-owned unit of batch work submitted to a fabric.
pub type FabricJob = Box<dyn FnOnce() + Send + 'static>;

/// Why a fabric could not take (or finish) a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FabricError {
    /// The fabric is shutting down; the job was not accepted.
    Shutdown,
    /// The study's tenant was unregistered (or its queue torn down)
    /// while jobs were still queued or in flight.
    Cancelled,
    /// The tenant's evaluation budget is spent; the fabric refuses
    /// further jobs until the tenant re-registers with a fresh budget.
    BudgetExhausted {
        /// The budget that was configured (in jobs).
        budget: u64,
    },
    /// The evaluator was put in fabric mode without attaching a fabric
    /// (see [`Evaluator::with_fabric`](super::Evaluator::with_fabric)).
    NotAttached,
}

impl std::fmt::Display for FabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FabricError::Shutdown => write!(f, "fabric is shutting down"),
            FabricError::Cancelled => write!(f, "fabric dropped queued jobs (tenant torn down)"),
            FabricError::BudgetExhausted { budget } => {
                write!(f, "tenant budget of {budget} jobs is exhausted")
            }
            FabricError::NotAttached => {
                write!(f, "evaluator is in fabric mode but no fabric is attached")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// An external batch-execution pool candidate evaluation can ride.
///
/// Implementations accept fully-owned jobs and run each exactly once on
/// some worker thread, in any order and with any parallelism. `submit`
/// may block on backpressure (a bounded tenant queue) but must
/// eventually either accept the job or return a typed refusal — it must
/// never silently drop an accepted job while the fabric is healthy.
/// Jobs still queued when the fabric (or the submitting tenant) tears
/// down may be dropped unrun; submitters detect that through their own
/// completion channels.
pub trait EvalFabric: Send + Sync + std::fmt::Debug {
    /// Enqueues one job, blocking on backpressure until the fabric
    /// accepts it.
    ///
    /// # Errors
    ///
    /// Returns [`FabricError::Shutdown`] when the pool is tearing down,
    /// [`FabricError::Cancelled`] when the tenant was unregistered, and
    /// [`FabricError::BudgetExhausted`] when the tenant's job budget is
    /// spent.
    fn submit(&self, job: FabricJob) -> Result<(), FabricError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_cause() {
        assert!(FabricError::Shutdown.to_string().contains("shutting down"));
        assert!(FabricError::Cancelled.to_string().contains("dropped"));
        assert!(FabricError::BudgetExhausted { budget: 7 }.to_string().contains('7'));
        assert!(FabricError::NotAttached.to_string().contains("no fabric"));
    }

    #[test]
    fn inline_fabric_runs_jobs() {
        /// The degenerate fabric: runs every job on the submitting
        /// thread. Useful as the trait's smallest contract check.
        #[derive(Debug)]
        struct Inline;
        impl EvalFabric for Inline {
            fn submit(&self, job: FabricJob) -> Result<(), FabricError> {
                job();
                Ok(())
            }
        }
        let (tx, rx) = std::sync::mpsc::channel();
        Inline.submit(Box::new(move || tx.send(41 + 1).unwrap())).unwrap();
        assert_eq!(rx.recv().unwrap(), 42);
    }
}
