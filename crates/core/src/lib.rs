//! # pax-core — cross-layer approximation for printed ML circuits
//!
//! The reproduction of the paper's contribution (DATE'22): an automated
//! framework that couples two approximation layers, both tailored to
//! *bespoke* printed circuits whose coefficients are hardwired:
//!
//! 1. **Hardware-driven coefficient approximation** ([`coeff_approx`],
//!    algorithmic level) — every coefficient `w` may move to a
//!    neighbouring value `w̃ ∈ [w−e, w+e]` whose bespoke multiplier is
//!    cheaper (powers of two cost *nothing*); an exhaustive search picks
//!    the combination that balances positive and negative errors of each
//!    weighted sum, using the cached per-coefficient multiplier areas
//!    ([`mult_cache`]) as the area proxy the paper validates (r = 0.91).
//! 2. **Netlist pruning** ([`prune`], logic level) — gates whose output
//!    is almost always the same value (τ) and which can only influence
//!    low-significance score bits (φ) are replaced by constants; a full
//!    `(τc, φc)` search re-synthesizes and re-evaluates every distinct
//!    pruned design.
//!
//! The [`framework`] module drives the whole flow for one model —
//! baseline bespoke circuit → coefficient approximation → pruning on
//! both — and returns every evaluated design as a [`DesignPoint`] plus
//! the Pareto front ([`pareto`]) and per-stage wall-clock
//! ([`framework::ExecStats`], the paper's Table III).
//!
//! The pruning exploration itself runs on the pluggable [`explore`]
//! engine: the paper's exhaustive `(τc, φc)` sweep
//! ([`explore::ExhaustiveGrid`], the default) and a seeded evolutionary
//! search ([`explore::Nsga2`]) are interchangeable
//! [`explore::SearchStrategy`] implementations, selected through
//! [`framework::FrameworkConfig::search`]. The objective space itself
//! is configurable ([`explore::ObjectiveSet`]): beyond the paper's
//! accuracy × area trade-off, any subset of accuracy ↑ / area ↓ /
//! power ↓ / delay ↓ can drive dominance, N-D hypervolume and
//! evolutionary selection.
//!
//! # Examples
//!
//! End-to-end on a small synthetic model:
//!
//! ```
//! use pax_core::framework::{Framework, FrameworkConfig};
//! use pax_ml::synth_data::blobs;
//! use pax_ml::train::svm::{train_svm_classifier, SvmParams};
//! use pax_ml::quant::{QuantSpec, QuantizedModel};
//!
//! let data = blobs("demo", 240, 4, 3, 0.08, 7);
//! let (train, test) = data.split(0.7, 1);
//! let (train, test) = pax_ml::normalize(&train, &test);
//! let svc = train_svm_classifier(&train, &SvmParams { epochs: 40, ..Default::default() }, 3);
//! let q = QuantizedModel::from_linear_classifier("demo", &svc, QuantSpec::default());
//!
//! let fw = Framework::new(FrameworkConfig::default());
//! let study = fw.run_study(&q, &train, &test);
//! assert!(study.coeff.area_mm2 <= study.baseline.area_mm2);
//! assert!(!study.cross.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod coeff_approx;
mod design_point;
mod error;
pub mod explore;
pub mod framework;
pub mod mult_cache;
pub mod pareto;
pub mod prune;
pub mod report;

pub use design_point::{DesignPoint, Technique};
pub use error::StudyError;
