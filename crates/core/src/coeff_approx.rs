//! Hardware-driven coefficient approximation (paper §III-B).
//!
//! For each weighted sum of the model, every coefficient `wᵢ` gets a
//! two-element candidate set `Rᵢ = {w̃ᵢ⁻, w̃ᵢ⁺}`:
//!
//! * `w̃ᵢ⁻ ∈ [wᵢ, wᵢ+e]` — the cheapest-area value *above* `wᵢ`
//!   (replacing `wᵢ` with it makes the term error `xᵢ·(wᵢ−w̃ᵢ)` negative,
//!   since inputs are unsigned);
//! * `w̃ᵢ⁺ ∈ [wᵢ−e, wᵢ]` — the cheapest value below (positive error);
//!
//! both clipped at the representable coefficient range. An exhaustive
//! search over `∏ Rᵢ` then picks the configuration minimizing
//! `|Σ (wᵢ − w̃ᵢ)|` — balancing positive against negative errors — with
//! ties broken towards minimal `Σ AREA(BM_w̃ᵢ)`. The multiplier-area sum
//! is the proxy for the weighted-sum area (validated at r ≈ 0.9 by the
//! `proxy` benchmark, as in the paper).

use pax_ml::quant::QuantizedModel;

use crate::mult_cache::MultCache;

/// Configuration of the coefficient approximation.
#[derive(Debug, Clone, PartialEq)]
pub struct CoeffApproxConfig {
    /// Neighbourhood half-width `e`. The paper fixes `e = 4`: area gains
    /// saturate beyond it (Fig. 2).
    pub e: i64,
    /// Weighted sums with more coefficients than this fall back to a
    /// greedy balance (the paper's models stay ≤ 21, far below this).
    pub exhaustive_limit: usize,
}

impl Default for CoeffApproxConfig {
    fn default() -> Self {
        Self { e: 4, exhaustive_limit: 24 }
    }
}

/// Per-sum outcome of the approximation.
#[derive(Debug, Clone)]
pub struct SumApproxReport {
    /// Layer index (0 = hidden/class sums, 1 = MLP output sums).
    pub layer: usize,
    /// Sum index within its layer.
    pub index: usize,
    /// Residual weight error `Σ (wᵢ − w̃ᵢ)` of the chosen configuration.
    pub residual_error: i64,
    /// Area proxy before, in mm².
    pub proxy_before: f64,
    /// Area proxy after, in mm².
    pub proxy_after: f64,
}

/// Whole-model report.
#[derive(Debug, Clone)]
pub struct CoeffApproxReport {
    /// Per-sum details.
    pub sums: Vec<SumApproxReport>,
}

impl CoeffApproxReport {
    /// Total area proxy before approximation.
    pub fn proxy_before(&self) -> f64 {
        self.sums.iter().map(|s| s.proxy_before).sum()
    }

    /// Total area proxy after approximation.
    pub fn proxy_after(&self) -> f64 {
        self.sums.iter().map(|s| s.proxy_after).sum()
    }

    /// Relative proxy reduction in percent.
    pub fn proxy_reduction_pct(&self) -> f64 {
        let before = self.proxy_before();
        if before <= 0.0 {
            0.0
        } else {
            (before - self.proxy_after()) / before * 100.0
        }
    }
}

/// Applies the approximation, returning the rewritten model and a
/// report. The input model is not modified.
pub fn approximate_model(
    model: &QuantizedModel,
    cache: &MultCache,
    cfg: &CoeffApproxConfig,
) -> (QuantizedModel, CoeffApproxReport) {
    approximate_model_layers(model, cache, cfg, &[cfg.e, cfg.e])
}

/// Per-layer variant of [`approximate_model`]: `layer_e[l]` overrides
/// the neighbourhood half-width for layer `l`'s sums. `e = 0` leaves a
/// layer exact (a width-0 neighbourhood is the identity — the
/// `e_zero_is_identity` test pins this — so those sums are skipped
/// wholesale rather than balanced over single-value candidate sets).
/// Layers beyond the slice stay exact. This is the primitive behind
/// the graded [`CoeffGene`](crate::explore::CoeffGene) axis, where each
/// gene level maps to one `e` per layer.
pub fn approximate_model_layers(
    model: &QuantizedModel,
    cache: &MultCache,
    cfg: &CoeffApproxConfig,
    layer_e: &[i64],
) -> (QuantizedModel, CoeffApproxReport) {
    assert!(layer_e.iter().all(|&e| e >= 0), "negative neighbourhood width");
    let mut out = model.clone();
    let shapes = model.sum_shapes();

    // The sums are independent; approximate them in parallel.
    let results: Vec<(usize, usize, Vec<i64>, SumApproxReport)> = std::thread::scope(|s| {
        let handles: Vec<_> = shapes
            .iter()
            .map(|&(layer, index, in_bits)| {
                let model = &model;
                let cache = &cache;
                let cfg = &cfg;
                s.spawn(move || {
                    let e = layer_e.get(layer).copied().unwrap_or(0);
                    let sum = model.sum(layer, index);
                    if e == 0 {
                        // Identity layer: unchanged weights, zero
                        // residual, proxy before == after.
                        let proxy: f64 =
                            sum.weights.iter().map(|&w| cache.area(in_bits.max(1), w)).sum();
                        let report = SumApproxReport {
                            layer,
                            index,
                            residual_error: 0,
                            proxy_before: proxy,
                            proxy_after: proxy,
                        };
                        return (layer, index, sum.weights.clone(), report);
                    }
                    let layer_cfg = CoeffApproxConfig { e, exhaustive_limit: cfg.exhaustive_limit };
                    let (weights, report) = approximate_sum(
                        &sum.weights,
                        in_bits.max(1),
                        model.spec.coef_range(),
                        cache,
                        &layer_cfg,
                        layer,
                        index,
                    );
                    (layer, index, weights, report)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("approx thread")).collect()
    });

    let mut sums = Vec::with_capacity(results.len());
    for (layer, index, weights, report) in results {
        out.sum_mut(layer, index).weights = weights;
        sums.push(report);
    }
    sums.sort_by_key(|r| (r.layer, r.index));
    (out, CoeffApproxReport { sums })
}

/// Approximates one weighted sum; returns the new weights and a report.
fn approximate_sum(
    weights: &[i64],
    in_bits: u32,
    (coef_lo, coef_hi): (i64, i64),
    cache: &MultCache,
    cfg: &CoeffApproxConfig,
    layer: usize,
    index: usize,
) -> (Vec<i64>, SumApproxReport) {
    let proxy_before: f64 = weights.iter().map(|&w| cache.area(in_bits, w)).sum();

    // Candidate sets Ri = {down (positive error), up (negative error)}.
    let candidates: Vec<(i64, i64)> = weights
        .iter()
        .map(|&w| {
            let up = best_in_segment(w, (w + cfg.e).min(coef_hi), in_bits, cache);
            let down = best_in_segment((w - cfg.e).max(coef_lo), w, in_bits, cache);
            (down, up)
        })
        .collect();

    let chosen = if weights.len() <= cfg.exhaustive_limit {
        exhaustive_balance(weights, &candidates, in_bits, cache)
    } else {
        greedy_balance(weights, &candidates, in_bits, cache)
    };

    let residual_error: i64 = weights.iter().zip(&chosen).map(|(w, c)| w - c).sum();
    let proxy_after: f64 = chosen.iter().map(|&w| cache.area(in_bits, w)).sum();
    (chosen, SumApproxReport { layer, index, residual_error, proxy_before, proxy_after })
}

/// The cheapest-area value in `[lo, hi]`; ties prefer values closer to
/// the segment's original coefficient (callers pass `w` as one bound).
fn best_in_segment(lo: i64, hi: i64, in_bits: u32, cache: &MultCache) -> i64 {
    debug_assert!(lo <= hi);
    let mut best = lo;
    let mut best_area = f64::INFINITY;
    // Scan from the bound nearest the original w outward so equal-area
    // ties keep the smallest |w - w̃|. One bound of the segment is w
    // itself; iterate from that side.
    let values: Vec<i64> = (lo..=hi).collect();
    for &cand in values.iter() {
        let a = cache.area(in_bits, cand);
        if a < best_area {
            best_area = a;
            best = cand;
        }
    }
    best
}

/// Exhaustive search over the 2^n candidate configurations minimizing
/// `|Σ error|`, ties by total multiplier area.
fn exhaustive_balance(
    weights: &[i64],
    candidates: &[(i64, i64)],
    in_bits: u32,
    cache: &MultCache,
) -> Vec<i64> {
    let n = weights.len();
    // Precompute per-position (error, area) of both options.
    let opts: Vec<[(i64, f64); 2]> = weights
        .iter()
        .zip(candidates)
        .map(|(&w, &(down, up))| {
            [(w - down, cache.area(in_bits, down)), (w - up, cache.area(in_bits, up))]
        })
        .collect();

    let mut best_mask = 0u64;
    let mut best_err = i64::MAX;
    let mut best_area = f64::INFINITY;
    for mask in 0u64..(1u64 << n) {
        let mut err = 0i64;
        let mut area = 0.0f64;
        for (i, o) in opts.iter().enumerate() {
            let pick = (mask >> i & 1) as usize;
            err += o[pick].0;
            area += o[pick].1;
        }
        let err = err.abs();
        if err < best_err || (err == best_err && area < best_area) {
            best_err = err;
            best_area = area;
            best_mask = mask;
        }
    }
    weights
        .iter()
        .zip(candidates)
        .enumerate()
        .map(|(i, (_, &(down, up)))| if best_mask >> i & 1 == 1 { up } else { down })
        .collect()
}

/// Greedy fallback for very wide sums: pick per-coefficient the cheaper
/// candidate, then flip the choices that best re-balance the error.
fn greedy_balance(
    weights: &[i64],
    candidates: &[(i64, i64)],
    in_bits: u32,
    cache: &MultCache,
) -> Vec<i64> {
    let mut chosen: Vec<i64> = candidates
        .iter()
        .map(
            |&(down, up)| {
                if cache.area(in_bits, down) <= cache.area(in_bits, up) {
                    down
                } else {
                    up
                }
            },
        )
        .collect();
    // Flip selections while it reduces |Σ error|.
    loop {
        let err: i64 = weights.iter().zip(&chosen).map(|(w, c)| w - c).sum();
        if err == 0 {
            break;
        }
        let mut best: Option<(usize, i64)> = None;
        for (i, (&(down, up), &cur)) in candidates.iter().zip(&chosen).enumerate() {
            let alt = if cur == down { up } else { down };
            if alt == cur {
                continue;
            }
            // err = Σ(w − c); flipping c from cur to alt changes err by
            // −(alt − cur).
            let candidate_err = err - (alt - cur);
            if candidate_err.abs() < best.map_or(err.abs(), |(_, e)| e) {
                best = Some((i, candidate_err.abs()));
            }
        }
        match best {
            Some((i, _)) => {
                let (down, up) = candidates[i];
                chosen[i] = if chosen[i] == down { up } else { down };
            }
            None => break,
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_ml::model::LinearClassifier;
    use pax_ml::quant::{QuantSpec, QuantizedModel};

    fn cache() -> MultCache {
        MultCache::new(egt_pdk::egt_library())
    }

    fn model_with_weights(rows: Vec<Vec<f64>>) -> QuantizedModel {
        let k = rows.len();
        QuantizedModel::from_linear_classifier(
            "t",
            &LinearClassifier::new(rows, vec![0.0; k]),
            QuantSpec::default(),
        )
    }

    #[test]
    fn approximation_reduces_area_proxy() {
        // Dense coefficients near powers of two: big wins available.
        let m =
            model_with_weights(vec![vec![0.49, -0.26, 0.99, 0.13], vec![-0.52, 0.27, -0.95, 0.24]]);
        let c = cache();
        let (approx, report) = approximate_model(&m, &c, &CoeffApproxConfig::default());
        assert!(report.proxy_after() < report.proxy_before());
        assert!(report.proxy_reduction_pct() > 0.0);
        // Weights moved by at most e.
        for (before, after) in m.layer1.iter().zip(&approx.layer1) {
            for (&w, &wa) in before.weights.iter().zip(&after.weights) {
                assert!((w - wa).abs() <= 4, "{w} -> {wa}");
            }
        }
    }

    #[test]
    fn errors_are_balanced() {
        let m = model_with_weights(vec![vec![0.37, -0.81, 0.22, 0.66, -0.14]]);
        let c = cache();
        let (_, report) = approximate_model(&m, &c, &CoeffApproxConfig::default());
        // Exhaustive balancing keeps the residual error tiny relative to
        // the worst case (5 coefficients × e=4 = 20).
        assert!(
            report.sums[0].residual_error.abs() <= 4,
            "residual {}",
            report.sums[0].residual_error
        );
    }

    #[test]
    fn e_zero_is_identity() {
        let m = model_with_weights(vec![vec![0.5, -0.3, 0.8]]);
        let c = cache();
        let cfg = CoeffApproxConfig { e: 0, ..Default::default() };
        let (approx, report) = approximate_model(&m, &c, &cfg);
        assert_eq!(approx.layer1, m.layer1);
        assert_eq!(report.proxy_before(), report.proxy_after());
    }

    #[test]
    fn per_layer_widths_match_uniform_and_identity() {
        let m =
            model_with_weights(vec![vec![0.49, -0.26, 0.99, 0.13], vec![-0.52, 0.27, -0.95, 0.24]]);
        let c = cache();
        let cfg = CoeffApproxConfig::default();
        // Uniform per-layer widths reproduce the whole-model path
        // exactly (the legacy entry point now delegates here).
        let (uniform, _) = approximate_model(&m, &c, &cfg);
        let (layered, rep) = approximate_model_layers(&m, &c, &cfg, &[cfg.e, cfg.e]);
        assert_eq!(uniform.layer1, layered.layer1);
        assert!(rep.proxy_after() < rep.proxy_before());
        // A zero width leaves the layer exact, with an identity report.
        let (exact, rep0) = approximate_model_layers(&m, &c, &cfg, &[0]);
        assert_eq!(exact.layer1, m.layer1);
        assert_eq!(rep0.proxy_before(), rep0.proxy_after());
        assert!(rep0.sums.iter().all(|s| s.residual_error == 0));
    }

    #[test]
    fn clipping_at_range_borders() {
        // Weight quantized to exactly +127: the up-segment must clip at
        // 127 and never propose 128.
        let m = model_with_weights(vec![vec![1.0, -1.0, 0.01]]);
        let c = cache();
        let (approx, _) = approximate_model(&m, &c, &CoeffApproxConfig::default());
        for sum in &approx.layer1 {
            for &w in &sum.weights {
                assert!((-128..=127).contains(&w), "{w} out of range");
            }
        }
    }

    #[test]
    fn greedy_matches_exhaustive_direction_on_wide_sums() {
        let m = model_with_weights(vec![(0..30)
            .map(|i| ((i * 17 + 3) % 200) as f64 / 100.0 - 1.0)
            .collect()]);
        let c = cache();
        let cfg = CoeffApproxConfig { e: 4, exhaustive_limit: 8 }; // force greedy
        let (_, report) = approximate_model(&m, &c, &cfg);
        assert!(report.proxy_after() <= report.proxy_before());
        assert!(report.sums[0].residual_error.abs() <= 8);
    }

    #[test]
    fn approximation_never_increases_the_proxy() {
        // Both candidates of every coefficient are minimum-area values of
        // segments that contain the original coefficient, so whatever the
        // balance search picks, the proxy cannot grow. (Note the *chosen*
        // configuration is not monotone in e — balancing may prefer a
        // pricier candidate — only this upper bound is guaranteed.)
        let m = model_with_weights(vec![vec![0.43, -0.61, 0.29, 0.87, -0.33, 0.11]]);
        let c = cache();
        for e in [1, 2, 4, 6, 10] {
            let (_, r) = approximate_model(&m, &c, &CoeffApproxConfig { e, ..Default::default() });
            assert!(r.proxy_after() <= r.proxy_before() + 1e-9, "e={e}");
        }
    }

    #[test]
    fn candidate_floor_improves_with_e() {
        // The per-coefficient best reachable area is monotone in e even
        // though the balanced choice is not.
        let c = cache();
        for w in [-93i64, -37, 29, 77, 121] {
            let floor = |e: i64| {
                ((w - e).max(-128)..=(w + e).min(127))
                    .map(|cand| c.area(4, cand))
                    .fold(f64::INFINITY, f64::min)
            };
            assert!(floor(6) <= floor(2) + 1e-12, "w={w}");
            assert!(floor(2) <= floor(1) + 1e-12, "w={w}");
        }
    }
}
