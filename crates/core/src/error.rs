//! Typed framework errors.
//!
//! The measurement path used to `expect("library covers cells")` its
//! way through area, power and timing: fine when the built-in EGT
//! library backs every circuit, but a custom [`Library`] missing a cell
//! would abort the whole study. The `try_*` entry points
//! ([`Framework::try_measure`], [`Framework::try_run_study`], the
//! [`explore`](crate::explore) engine) surface these conditions as
//! [`StudyError`] instead — mirroring how `pax-sim` replaced its
//! stimulus-packing panics with `SimError`. The panicking wrappers
//! remain for study code that treats an incomplete library as a bug.
//!
//! [`Library`]: egt_pdk::Library
//! [`Framework::try_measure`]: crate::framework::Framework::try_measure
//! [`Framework::try_run_study`]: crate::framework::Framework::try_run_study

use egt_pdk::PdkError;
use pax_sim::SimError;

/// Why a study (or a single measurement inside one) could not run.
#[derive(Debug, Clone, PartialEq)]
pub enum StudyError {
    /// The cell library does not cover the netlist (area, power or
    /// timing lookup failed).
    Library(PdkError),
    /// A simulation request was malformed (dataset does not match the
    /// model's ports).
    Sim(SimError),
    /// A search candidate referenced a base circuit the evaluator was
    /// not given (e.g. a coefficient-approximated candidate against an
    /// evaluator holding only the exact baseline).
    MissingContext {
        /// The per-layer coefficient-approximation gene the candidate
        /// asked for.
        gene: crate::explore::CoeffGene,
    },
    /// A parallel grid evaluation drained without a result for every
    /// set. Unreachable unless a worker died without reporting an error
    /// — this variant replaces the old `expect("every set evaluated")`
    /// panic on the drain path.
    IncompleteGrid,
    /// The evaluation fabric refused or dropped a shipped job: the pool
    /// is shutting down, the study's tenant was unregistered mid-batch,
    /// or its job budget is spent. See
    /// [`FabricError`](crate::explore::FabricError).
    Fabric(crate::explore::FabricError),
    /// The structured search journal could not be opened or written
    /// (the underlying I/O error, stringified — `StudyError` is
    /// `Clone + PartialEq`, `std::io::Error` is neither). A journal is
    /// opt-in, so this only fires when one was requested.
    Journal(String),
}

impl std::fmt::Display for StudyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StudyError::Library(e) => write!(f, "library does not cover the netlist: {e}"),
            StudyError::Sim(e) => write!(f, "simulation rejected the dataset: {e}"),
            StudyError::MissingContext { gene } => {
                if gene.is_exact() {
                    write!(f, "no evaluation context for baseline candidates")
                } else {
                    write!(
                        f,
                        "no evaluation context for coefficient-approximated candidates \
                         (gene {gene})"
                    )
                }
            }
            StudyError::IncompleteGrid => {
                write!(f, "grid evaluation drained without a result for every pruned set")
            }
            StudyError::Fabric(e) => write!(f, "evaluation fabric failed the batch: {e}"),
            StudyError::Journal(e) => write!(f, "search journal I/O failed: {e}"),
        }
    }
}

impl std::error::Error for StudyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StudyError::Library(e) => Some(e),
            StudyError::Sim(e) => Some(e),
            StudyError::Fabric(e) => Some(e),
            StudyError::MissingContext { .. }
            | StudyError::IncompleteGrid
            | StudyError::Journal(_) => None,
        }
    }
}

impl From<PdkError> for StudyError {
    fn from(e: PdkError) -> Self {
        StudyError::Library(e)
    }
}

impl From<SimError> for StudyError {
    fn from(e: SimError) -> Self {
        StudyError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_layer() {
        let e = StudyError::Sim(SimError::EmptyStimulus);
        assert!(e.to_string().contains("empty stimulus"));
        let m = StudyError::MissingContext { gene: crate::explore::CoeffGene::per_layer(&[2, 1]) };
        assert!(m.to_string().contains("coefficient-approximated"));
        assert!(m.to_string().contains("2/1"), "{m}");
        let b = StudyError::MissingContext { gene: crate::explore::CoeffGene::exact() };
        assert!(b.to_string().contains("baseline"));
    }

    #[test]
    fn conversions_wrap_the_layer_error() {
        let s: StudyError = SimError::EmptyStimulus.into();
        assert_eq!(s, StudyError::Sim(SimError::EmptyStimulus));
    }
}
