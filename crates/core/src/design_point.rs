use serde::{Deserialize, Serialize};

use crate::explore::CoeffGene;

/// Which approximation produced a design (the four series of the
/// paper's Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Technique {
    /// The exact bespoke baseline of \[1\] (black triangle).
    Exact,
    /// Only the hardware-driven coefficient approximation (red star).
    CoeffApprox,
    /// Only netlist pruning, applied to the baseline (gray ×).
    PruneOnly,
    /// Coefficient approximation + pruning — the cross-layer flow
    /// (green dots).
    Cross,
}

impl Technique {
    /// Label used in reports and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            Technique::Exact => "exact",
            Technique::CoeffApprox => "coeff-approx",
            Technique::PruneOnly => "prune-only",
            Technique::Cross => "cross-layer",
        }
    }

    /// Inverse of [`Technique::label`] — used by the artifact format.
    pub fn from_label(label: &str) -> Option<Technique> {
        match label {
            "exact" => Some(Technique::Exact),
            "coeff-approx" => Some(Technique::CoeffApprox),
            "prune-only" => Some(Technique::PruneOnly),
            "cross-layer" => Some(Technique::Cross),
            _ => None,
        }
    }
}

impl std::fmt::Display for Technique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One fully evaluated hardware design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Producing technique.
    pub technique: Technique,
    /// Pruning τ threshold, if pruning was applied.
    pub tau_c: Option<f64>,
    /// Pruning φ threshold, if pruning was applied.
    pub phi_c: Option<i64>,
    /// The winning coefficient-approximation gene, when the point came
    /// from a non-exact base circuit (joint-mode `Cross` /
    /// `CoeffApprox` points). `None` for exact-base points, so
    /// exact-technique points compare equal across producers that do
    /// and do not track genes.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub coeff: Option<CoeffGene>,
    /// Test-set accuracy.
    pub accuracy: f64,
    /// Printed area in mm².
    pub area_mm2: f64,
    /// Total power in mW (test-set activity).
    pub power_mw: f64,
    /// Gate count.
    pub gate_count: usize,
    /// Critical-path delay in ms.
    pub critical_ms: f64,
}

impl DesignPoint {
    /// Area normalized to a baseline (the paper's Fig. 3 x-axis).
    pub fn norm_area(&self, baseline_area: f64) -> f64 {
        if baseline_area <= 0.0 {
            0.0
        } else {
            self.area_mm2 / baseline_area
        }
    }

    /// Area in cm² (the paper's Tables I/II unit).
    pub fn area_cm2(&self) -> f64 {
        self.area_mm2 / 100.0
    }

    /// `true` if `self` dominates `other` in the (accuracy ↑, area ↓)
    /// sense — at least as good in both, strictly better in one.
    pub fn dominates(&self, other: &DesignPoint) -> bool {
        let ge = self.accuracy >= other.accuracy && self.area_mm2 <= other.area_mm2;
        let strict = self.accuracy > other.accuracy || self.area_mm2 < other.area_mm2;
        ge && strict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(acc: f64, area: f64) -> DesignPoint {
        DesignPoint {
            technique: Technique::Cross,
            tau_c: None,
            phi_c: None,
            coeff: None,
            accuracy: acc,
            area_mm2: area,
            power_mw: 1.0,
            gate_count: 10,
            critical_ms: 5.0,
        }
    }

    #[test]
    fn dominance_semantics() {
        assert!(point(0.9, 100.0).dominates(&point(0.8, 100.0)));
        assert!(point(0.9, 90.0).dominates(&point(0.9, 100.0)));
        assert!(!point(0.9, 100.0).dominates(&point(0.9, 100.0)), "equal points tie");
        assert!(!point(0.95, 110.0).dominates(&point(0.9, 100.0)), "trade-off");
    }

    #[test]
    fn unit_conversions() {
        let p = point(0.9, 1234.0);
        assert!((p.area_cm2() - 12.34).abs() < 1e-12);
        assert!((p.norm_area(2468.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn technique_labels_are_stable() {
        assert_eq!(Technique::Exact.label(), "exact");
        assert_eq!(Technique::Cross.to_string(), "cross-layer");
    }
}
