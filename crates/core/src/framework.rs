//! The end-to-end cross-layer approximation framework.
//!
//! [`Framework::run_study`] executes the paper's full flow for one
//! trained, quantized model:
//!
//! 1. generate + optimize the **exact bespoke baseline** (black
//!    triangle) and measure it;
//! 2. apply the **coefficient approximation** and measure the resulting
//!    circuit (red star);
//! 3. run the full **pruning exploration on the baseline** (gray ×);
//! 4. run it **on the coefficient-approximated circuit** — the
//!    cross-layer designs (green dots);
//!
//! returning every evaluated design, per-stage wall-clock (Table III)
//! and helpers for the Pareto front (Fig. 3) and the <1%-loss area
//! optimum (Table II).
//!
//! Both pruning explorations run on the pluggable
//! [`explore`](crate::explore) engine; [`FrameworkConfig::search`]
//! selects the strategy (exhaustive grid by default, evolutionary
//! NSGA-II via [`SearchConfig::nsga2`]) and the [`ObjectiveSet`] the
//! exploration optimizes (accuracy × area by default, any subset of accuracy /
//! area / power / delay), and [`Framework::run_study_with`] overrides
//! both per study.

use std::time::Instant;

use egt_pdk::{Library, TechParams};
use pax_bespoke::{try_evaluate_compiled, BespokeCircuit};
use pax_ml::quant::{ModelKind, QuantizedModel};
use pax_ml::Dataset;
use pax_sim::CompiledNetlist;
use pax_synth::{area, opt};

use crate::coeff_approx::{approximate_model, CoeffApproxConfig, CoeffApproxReport};
use crate::error::StudyError;
use crate::explore::{
    CoeffAxis, CoeffGene, Engine, EvalContext, Evaluator, ExhaustiveGrid, Nsga2, Nsga2Config,
    ObjectiveSet, SearchStats, SearchStrategy,
};
use crate::mult_cache::MultCache;
use crate::prune::{analyze, analyze_compiled, apply_set, PruneConfig};
use crate::{pareto, DesignPoint, Technique};

/// Which search shape drives the pruning exploration.
///
/// Strategy objects themselves are stateful, so the configuration
/// stores a *recipe*; [`SearchConfig::build`] instantiates a fresh
/// strategy per exploration. Custom [`SearchStrategy`] implementations
/// plug in through [`Framework::try_run_study_with`].
#[derive(Debug, Clone, PartialEq, Default)]
pub enum StrategyConfig {
    /// The paper-faithful exhaustive `(τc, φc)` sweep (the default).
    #[default]
    Exhaustive,
    /// Seeded NSGA-II-style evolutionary search under an evaluation
    /// budget.
    Nsga2(Nsga2Config),
}

/// The full search configuration: a strategy recipe plus the objective
/// space it optimizes (accuracy ↑ × area ↓ by default; any subset of
/// accuracy/area/power/delay via [`ObjectiveSet`]).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchConfig {
    /// The search shape (exhaustive grid by default).
    pub strategy: StrategyConfig,
    /// The objective axes dominance, archives and evolutionary
    /// selection rank by.
    pub objectives: ObjectiveSet,
    /// Coefficient-approximation error widths opened as a graded
    /// search axis: `levels[k - 1]` is the `e` a gene level `k` maps
    /// to (level 0 is always exact). Empty (the default) keeps the
    /// paper-faithful two-pass flow — one pruning exploration on the
    /// exact baseline, one on the `e`-approximated circuit. Non-empty
    /// runs **one joint exploration** whose search space holds the
    /// exact base circuit plus every per-layer gene combination over
    /// these widths (see [`Evaluator::with_coeff_axis`]).
    pub coeff_levels: Vec<i64>,
    /// Prior survivors injected into an evolutionary search's
    /// generation 0 ([`SearchConfig::seed_front`]). Ignored by the
    /// exhaustive grid, which enumerates everything regardless.
    pub seed_front: Vec<DesignPoint>,
}

impl SearchConfig {
    /// The paper-faithful default: exhaustive sweep over (accuracy,
    /// area).
    pub fn exhaustive() -> Self {
        Self::default()
    }

    /// Evolutionary search under the default (accuracy, area)
    /// objectives.
    pub fn nsga2(cfg: Nsga2Config) -> Self {
        Self { strategy: StrategyConfig::Nsga2(cfg), ..Default::default() }
    }

    /// Replaces the objective space (builder style).
    pub fn with_objectives(mut self, objectives: ObjectiveSet) -> Self {
        self.objectives = objectives;
        self
    }

    /// Opens the coefficient-approximation axis (builder style): the
    /// ascending error widths gene levels `1..` map to. See
    /// [`SearchConfig::coeff_levels`].
    pub fn with_coeff_levels(mut self, levels: Vec<i64>) -> Self {
        self.coeff_levels = levels;
        self
    }

    /// Warm-starts the search with a previously found front (builder
    /// style): an evolutionary strategy injects these survivors into
    /// its generation 0, so a follow-up study — a re-run under new
    /// objectives, a finer coefficient axis, a bigger budget — resumes
    /// from the prior front instead of rediscovering it. See
    /// [`Nsga2::with_seed_front`] for the genome-reconstruction rules.
    #[must_use]
    pub fn seed_front(mut self, front: &[DesignPoint]) -> Self {
        self.seed_front = front.to_vec();
        self
    }

    /// Instantiates a fresh strategy from the recipe.
    pub fn build(&self) -> Box<dyn SearchStrategy> {
        match &self.strategy {
            StrategyConfig::Exhaustive => Box::new(ExhaustiveGrid::new()),
            StrategyConfig::Nsga2(cfg) => {
                Box::new(Nsga2::new(cfg.clone()).with_seed_front(&self.seed_front))
            }
        }
    }
}

/// Framework configuration.
#[derive(Debug, Clone, Default)]
pub struct FrameworkConfig {
    /// Coefficient-approximation settings (`e = 4` by default).
    pub coeff: CoeffApproxConfig,
    /// Pruning exploration settings (τc ∈ [80%, 99%]).
    pub prune: PruneConfig,
    /// Technology operating point (clock, battery, I/O floor).
    pub tech: TechParams,
    /// Search strategy driving both pruning explorations (exhaustive
    /// grid by default).
    pub search: SearchConfig,
}

/// Per-stage wall-clock of one study — the paper's Table III measures
/// the same breakdown (their Xeon server needed 1–48 minutes per
/// circuit; this in-process reproduction is considerably faster).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Baseline generation + measurement, in ms.
    pub baseline_ms: u128,
    /// Coefficient approximation (including multiplier-cache fill), ms.
    pub coeff_ms: u128,
    /// Pruning exploration on the baseline, ms. Zero in joint mode
    /// ([`SearchConfig::coeff_levels`] non-empty), where one
    /// exploration covers both series and bills `prune_cross_ms`.
    pub prune_baseline_ms: u128,
    /// Pruning exploration on the approximated circuit, ms (the whole
    /// joint exploration in joint mode).
    pub prune_cross_ms: u128,
    /// Number of (τc, φc) designs explored across both prunings.
    pub designs_explored: usize,
    /// Number of distinct prunings actually synthesized and simulated.
    pub designs_unique: usize,
    /// Per-exploration search statistics (baseline pruning first, then
    /// the cross-layer pruning).
    pub search: Vec<SearchStats>,
}

impl ExecStats {
    /// Total framework time in ms.
    pub fn total_ms(&self) -> u128 {
        self.baseline_ms + self.coeff_ms + self.prune_baseline_ms + self.prune_cross_ms
    }
}

/// Everything the framework produced for one model.
#[derive(Debug, Clone)]
pub struct CircuitStudy {
    /// Model/dataset identifier.
    pub name: String,
    /// Model family.
    pub kind: ModelKind,
    /// The exact bespoke design.
    pub baseline: DesignPoint,
    /// The coefficient-approximation-only design.
    pub coeff: DesignPoint,
    /// All pruning-only designs (pruned baselines).
    pub prune_only: Vec<DesignPoint>,
    /// All cross-layer designs (pruned approximated circuits).
    pub cross: Vec<DesignPoint>,
    /// Details of the coefficient approximation.
    pub coeff_report: CoeffApproxReport,
    /// Wall-clock breakdown.
    pub stats: ExecStats,
}

impl CircuitStudy {
    /// All evaluated designs, baseline first.
    pub fn all_points(&self) -> Vec<&DesignPoint> {
        std::iter::once(&self.baseline)
            .chain(std::iter::once(&self.coeff))
            .chain(self.prune_only.iter())
            .chain(self.cross.iter())
            .collect()
    }

    /// The Pareto-optimal designs over all techniques (accuracy ↑,
    /// area ↓), cloned in ascending-area order. Built on the
    /// incremental [`ParetoArchive`](crate::explore::ParetoArchive);
    /// `proptest_explore` pins its equivalence to the batch
    /// [`pareto::pareto_front`].
    pub fn pareto_front(&self) -> Vec<DesignPoint> {
        let mut archive = crate::explore::ParetoArchive::new();
        archive.extend(self.all_points().into_iter().cloned());
        archive.into_front()
    }

    /// The paper's Table II selection: per technique, the minimum-area
    /// design losing less than `max_loss` accuracy against the baseline.
    /// The baseline itself qualifies for `PruneOnly`/`Cross` series if
    /// nothing better exists (zero-gain entries appear in the paper's
    /// table too).
    pub fn best_within_loss(&self, technique: Technique, max_loss: f64) -> DesignPoint {
        let min_acc = self.baseline.accuracy - max_loss;
        let candidates: Vec<DesignPoint> = match technique {
            Technique::Exact => vec![self.baseline.clone()],
            Technique::CoeffApprox => vec![self.coeff.clone(), self.baseline.clone()],
            Technique::PruneOnly => {
                let mut v = self.prune_only.clone();
                v.push(self.baseline.clone());
                v
            }
            Technique::Cross => {
                let mut v = self.cross.clone();
                v.push(self.coeff.clone());
                v.push(self.baseline.clone());
                v
            }
        };
        let idx =
            pareto::best_area_within(&candidates, min_acc).expect("the baseline always qualifies");
        candidates[idx].clone()
    }
}

/// The cross-layer approximation framework.
#[derive(Debug)]
pub struct Framework {
    lib: Library,
    cfg: FrameworkConfig,
    cache: MultCache,
}

impl Framework {
    /// Creates a framework over the built-in EGT library.
    pub fn new(cfg: FrameworkConfig) -> Self {
        Self::with_library(egt_pdk::egt_library(), cfg)
    }

    /// Creates a framework over a custom printed library.
    pub fn with_library(lib: Library, cfg: FrameworkConfig) -> Self {
        let cache = MultCache::new(lib.clone());
        Self { lib, cfg, cache }
    }

    /// The framework's configuration.
    pub fn config(&self) -> &FrameworkConfig {
        &self.cfg
    }

    /// The shared bespoke-multiplier area cache.
    pub fn cache(&self) -> &MultCache {
        &self.cache
    }

    /// The library in use.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// Measures one circuit: test-set accuracy (and its switching
    /// activity), area, power, timing. Compiles the netlist for the one
    /// simulation; when the same circuit is measured *and* analyzed for
    /// pruning, [`Framework::measure_compiled`] shares one tape.
    ///
    /// # Panics
    ///
    /// Panics when the library does not cover the netlist or the
    /// dataset does not match the model — [`Framework::try_measure`]
    /// surfaces those as [`StudyError`] instead.
    pub fn measure(
        &self,
        netlist: &pax_netlist::Netlist,
        model: &QuantizedModel,
        test: &Dataset,
        technique: Technique,
    ) -> DesignPoint {
        self.try_measure(netlist, model, test, technique).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Framework::measure`] surfacing library/simulation problems as
    /// [`StudyError`] instead of panicking.
    pub fn try_measure(
        &self,
        netlist: &pax_netlist::Netlist,
        model: &QuantizedModel,
        test: &Dataset,
        technique: Technique,
    ) -> Result<DesignPoint, StudyError> {
        self.try_measure_compiled(
            &CompiledNetlist::compile(netlist),
            netlist,
            model,
            test,
            technique,
        )
    }

    /// [`Framework::measure`] over an already-compiled netlist: the
    /// study flow compiles each design point once and reuses the tape
    /// across every simulation of that point.
    ///
    /// # Panics
    ///
    /// See [`Framework::measure`];
    /// [`Framework::try_measure_compiled`] is the fallible variant.
    pub fn measure_compiled(
        &self,
        compiled: &CompiledNetlist,
        netlist: &pax_netlist::Netlist,
        model: &QuantizedModel,
        test: &Dataset,
        technique: Technique,
    ) -> DesignPoint {
        self.try_measure_compiled(compiled, netlist, model, test, technique)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Framework::measure_compiled`] surfacing library/simulation
    /// problems as [`StudyError`] instead of panicking.
    pub fn try_measure_compiled(
        &self,
        compiled: &CompiledNetlist,
        netlist: &pax_netlist::Netlist,
        model: &QuantizedModel,
        test: &Dataset,
        technique: Technique,
    ) -> Result<DesignPoint, StudyError> {
        let outcome = try_evaluate_compiled(compiled, model, test)?;
        let area = area::area_mm2(netlist, &self.lib)?;
        let power =
            pax_sim::power::power(netlist, &self.lib, &self.cfg.tech, &outcome.sim.activity)?;
        let timing = pax_sta::analyze(netlist, &self.lib, &self.cfg.tech)?;
        Ok(DesignPoint {
            technique,
            tau_c: None,
            phi_c: None,
            coeff: None,
            accuracy: outcome.accuracy,
            area_mm2: area,
            power_mw: power.total_mw(),
            gate_count: netlist.gate_count(),
            critical_ms: timing.critical_path_ms,
        })
    }

    /// Runs the complete flow on one quantized model, with the pruning
    /// exploration driven by the configured search strategy.
    ///
    /// `train` drives τ estimation (the paper simulates the training
    /// set for the SAIF dump) while `test` drives every accuracy and
    /// power figure.
    ///
    /// # Panics
    ///
    /// Panics when the library does not cover a synthesized circuit or
    /// the datasets do not match the model —
    /// [`Framework::try_run_study`] surfaces those as [`StudyError`].
    pub fn run_study(
        &self,
        model: &QuantizedModel,
        train: &Dataset,
        test: &Dataset,
    ) -> CircuitStudy {
        self.try_run_study(model, train, test).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Framework::run_study`] surfacing errors as [`StudyError`]
    /// instead of panicking.
    pub fn try_run_study(
        &self,
        model: &QuantizedModel,
        train: &Dataset,
        test: &Dataset,
    ) -> Result<CircuitStudy, StudyError> {
        self.try_run_study_with(model, train, test, &self.cfg.search)
    }

    /// [`Framework::run_study`] under an explicit search strategy,
    /// overriding [`FrameworkConfig::search`] — grid and evolutionary
    /// explorations of one model without rebuilding the framework.
    ///
    /// # Panics
    ///
    /// See [`Framework::run_study`].
    pub fn run_study_with(
        &self,
        model: &QuantizedModel,
        train: &Dataset,
        test: &Dataset,
        search: &SearchConfig,
    ) -> CircuitStudy {
        self.try_run_study_with(model, train, test, search).unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Framework::run_study_with`] surfacing errors as [`StudyError`]
    /// instead of panicking. Every study entry point funnels here.
    pub fn try_run_study_with(
        &self,
        model: &QuantizedModel,
        train: &Dataset,
        test: &Dataset,
        search: &SearchConfig,
    ) -> Result<CircuitStudy, StudyError> {
        // 1. Exact bespoke baseline. Compiled once: the tape serves the
        //    baseline measurement here and the τ analysis in step 3.
        let t0 = Instant::now();
        let base_circuit = {
            let c = BespokeCircuit::generate(model);
            c.with_netlist(opt::optimize(&c.netlist))
        };
        let base_tape = CompiledNetlist::compile(&base_circuit.netlist);
        let baseline = self.try_measure_compiled(
            &base_tape,
            &base_circuit.netlist,
            model,
            test,
            Technique::Exact,
        )?;
        let baseline_ms = t0.elapsed().as_millis();

        // 2. Coefficient approximation (multiplier cache fill is part of
        //    the paper's step-1 cost).
        let t1 = Instant::now();
        self.cache.build_range(model.spec.input_bits, model.spec.coef_bits);
        if model.kind.is_mlp() && model.hidden_width > 0 {
            self.cache.build_range(model.hidden_width, model.spec.coef_bits);
        }
        let (approx_model, coeff_report) = approximate_model(model, &self.cache, &self.cfg.coeff);
        let approx_circuit = {
            let c = BespokeCircuit::generate(&approx_model);
            c.with_netlist(opt::optimize(&c.netlist))
        };
        let approx_tape = CompiledNetlist::compile(&approx_circuit.netlist);
        let coeff = self.try_measure_compiled(
            &approx_tape,
            &approx_circuit.netlist,
            &approx_model,
            test,
            Technique::CoeffApprox,
        )?;
        let coeff_ms = t1.elapsed().as_millis();

        // 3 + 4. Pruning exploration(s). With an empty coeff-levels
        // ladder this is the paper-faithful two-pass flow (baseline
        // sweep, then the cross-layer sweep on the `e`-approximated
        // circuit) — bit-identical to the pre-axis framework. A
        // non-empty ladder instead runs ONE joint exploration whose
        // space holds the exact base plus every graded gene, and the
        // resulting points split into the two series by technique.
        let (prune_only, cross, prune_baseline_ms, prune_cross_ms, search_stats) =
            if search.coeff_levels.is_empty() {
                // 3. Pruning exploration on the baseline (gray ×).
                let t2 = Instant::now();
                let (prune_only, stats_a) = self.explore_series(
                    &base_circuit,
                    &base_tape,
                    model,
                    train,
                    test,
                    CoeffGene::exact(),
                    search,
                )?;
                let prune_baseline_ms = t2.elapsed().as_millis();

                // 4. Pruning exploration on the approximated circuit
                //    (green dots) — the cross-layer designs. The gene
                //    sets ladder index 1 on exactly the layers the
                //    model has, matching what a joint coeff axis would
                //    label the same base circuit — so the recorded
                //    `DesignPoint::coeff` agrees across the two routes.
                let t3 = Instant::now();
                let layers = model
                    .sum_shapes()
                    .iter()
                    .map(|&(layer, _, _)| layer + 1)
                    .max()
                    .unwrap_or(1)
                    .min(crate::explore::MAX_COEFF_LAYERS);
                let (cross, stats_b) = self.explore_series(
                    &approx_circuit,
                    &approx_tape,
                    &approx_model,
                    train,
                    test,
                    CoeffGene::per_layer(&vec![1; layers]),
                    search,
                )?;
                let prune_cross_ms = t3.elapsed().as_millis();
                (prune_only, cross, prune_baseline_ms, prune_cross_ms, vec![stats_a, stats_b])
            } else {
                let t2 = Instant::now();
                let analysis = analyze_compiled(&base_tape, &base_circuit.netlist, model, train);
                let evaluator = Evaluator::new(
                    &self.lib,
                    &self.cfg.tech,
                    test,
                    vec![EvalContext {
                        coeff: CoeffGene::exact(),
                        netlist: &base_circuit.netlist,
                        model,
                        analysis,
                    }],
                )
                .with_coeff_axis(CoeffAxis {
                    model,
                    train,
                    cache: &self.cache,
                    cfg: self.cfg.coeff.clone(),
                    levels: search.coeff_levels.clone(),
                });
                let mut engine =
                    Engine::with_objectives(&evaluator, &self.cfg.prune, search.objectives.clone());
                engine.set_journal_label(format!("{}/prune-joint", model.name));
                let mut strategy = search.build();
                let outcome = engine.run(strategy.as_mut())?;
                let (mut prune_only, mut cross) = (Vec::new(), Vec::new());
                for (_, p) in outcome.points {
                    match p.technique {
                        Technique::Cross => cross.push(p),
                        _ => prune_only.push(p),
                    }
                }
                // One joint pass: the whole wall-clock lands on the
                // cross bucket, the baseline bucket stays zero.
                (prune_only, cross, 0, t2.elapsed().as_millis(), vec![outcome.stats])
            };

        Ok(CircuitStudy {
            name: model.name.clone(),
            kind: model.kind,
            baseline,
            coeff,
            prune_only,
            cross,
            coeff_report,
            stats: ExecStats {
                baseline_ms,
                coeff_ms,
                prune_baseline_ms,
                prune_cross_ms,
                designs_explored: search_stats.iter().map(|s| s.asked).sum(),
                designs_unique: search_stats.iter().map(|s| s.evaluated).sum(),
                search: search_stats,
            },
        })
    }

    /// Re-materializes the netlist of a design point selected from a
    /// study: re-applies the coefficient approximation (for
    /// `CoeffApprox`/`Cross`) and the pruning threshold pair recorded in
    /// the point. Deterministic — the returned netlist has exactly the
    /// metrics the point reported.
    pub fn materialize(
        &self,
        model: &QuantizedModel,
        train: &Dataset,
        point: &DesignPoint,
    ) -> pax_netlist::Netlist {
        self.materialize_with_model(model, train, point).0
    }

    /// Like [`Framework::materialize`], but also returns the **golden
    /// model** the netlist hardwires: for `CoeffApprox`/`Cross` points
    /// that is the coefficient-approximated model, not the input model.
    /// Serving cross-checks (see `pax-serve`) need this model — pruning
    /// is a netlist-level approximation, so the golden model predicts
    /// exactly what the *unpruned* circuit would.
    pub fn materialize_with_model(
        &self,
        model: &QuantizedModel,
        train: &Dataset,
        point: &DesignPoint,
    ) -> (pax_netlist::Netlist, QuantizedModel) {
        self.materialize_with_model_cached(model, train, point, None)
    }

    /// [`Framework::materialize_with_model`] reusing a caller-supplied
    /// [`PruneAnalysis`](crate::prune::PruneAnalysis) instead of
    /// re-simulating the training set per export.
    ///
    /// The analysis must have been computed (with `train`) on exactly
    /// the base circuit this point materializes from — the optimized
    /// bespoke netlist of the exact model for `Exact`/`PruneOnly`
    /// points, of the coefficient-approximated model for
    /// `CoeffApprox`/`Cross` points. Study drivers exporting many
    /// design points of one study already hold that analysis (it drove
    /// the exploration); threading it through here removes the
    /// dominant per-export cost. Pass `None` to recompute.
    pub fn materialize_with_model_cached(
        &self,
        model: &QuantizedModel,
        train: &Dataset,
        point: &DesignPoint,
        cached: Option<&crate::prune::PruneAnalysis>,
    ) -> (pax_netlist::Netlist, QuantizedModel) {
        let base_model = match point.technique {
            Technique::Exact | Technique::PruneOnly => model.clone(),
            Technique::CoeffApprox | Technique::Cross => {
                self.cache.build_range(model.spec.input_bits, model.spec.coef_bits);
                if model.kind.is_mlp() && model.hidden_width > 0 {
                    self.cache.build_range(model.hidden_width, model.spec.coef_bits);
                }
                approximate_model(model, &self.cache, &self.cfg.coeff).0
            }
        };
        let circuit = BespokeCircuit::generate(&base_model);
        let netlist = opt::optimize(&circuit.netlist);
        let netlist = match (point.tau_c, point.phi_c) {
            (Some(tau_c), Some(phi_c)) => {
                let computed;
                let analysis = match cached {
                    Some(a) => {
                        // A wrong-circuit analysis must fail loudly, not
                        // silently mis-prune: besides the node count,
                        // the candidate list is a structural fingerprint
                        // (it is exactly the netlist's non-free gates in
                        // id order, which two different base circuits
                        // essentially never share).
                        let candidates: Vec<pax_netlist::NetId> = netlist
                            .iter()
                            .filter_map(|(id, node)| match node {
                                pax_netlist::Node::Gate(g) if !g.kind.is_free() => Some(id),
                                _ => None,
                            })
                            .collect();
                        assert!(
                            a.tau.len() == netlist.len() && a.candidates == candidates,
                            "cached analysis does not match the materialized base circuit"
                        );
                        a
                    }
                    None => {
                        computed = analyze(&netlist, &base_model, train);
                        &computed
                    }
                };
                let set: Vec<pax_netlist::NetId> = analysis
                    .candidates
                    .iter()
                    .copied()
                    .filter(|&g| analysis.tau_of(g) >= tau_c - 1e-12 && analysis.phi_of(g) <= phi_c)
                    .collect();
                apply_set(&netlist, analysis, &set)
            }
            _ => netlist,
        };
        (netlist, base_model)
    }

    /// Bundles a selected design into a self-contained, servable
    /// [`Artifact`](crate::artifact::Artifact): the materialized netlist,
    /// the golden model it hardwires, and the recorded metrics.
    pub fn export_artifact(
        &self,
        model: &QuantizedModel,
        train: &Dataset,
        point: &DesignPoint,
    ) -> crate::artifact::Artifact {
        let (netlist, golden) = self.materialize_with_model(model, train, point);
        crate::artifact::Artifact { model: golden, netlist, point: point.clone() }
    }

    /// One pruning exploration on the [`explore::Engine`](crate::explore::Engine):
    /// analyze the base circuit once, then let the configured strategy
    /// search its `(τc, φc)` space under the configured objective set.
    /// With [`StrategyConfig::Exhaustive`] this reproduces the
    /// pre-engine `enumerate_grid` + `evaluate_grid` sweep point for
    /// point.
    #[allow(clippy::too_many_arguments)]
    fn explore_series(
        &self,
        circuit: &BespokeCircuit,
        tape: &CompiledNetlist,
        model: &QuantizedModel,
        train: &Dataset,
        test: &Dataset,
        gene: CoeffGene,
        search: &SearchConfig,
    ) -> Result<(Vec<DesignPoint>, SearchStats), StudyError> {
        let analysis = analyze_compiled(tape, &circuit.netlist, model, train);
        let evaluator = Evaluator::new(
            &self.lib,
            &self.cfg.tech,
            test,
            vec![EvalContext { coeff: gene, netlist: &circuit.netlist, model, analysis }],
        );
        let mut engine =
            Engine::with_objectives(&evaluator, &self.cfg.prune, search.objectives.clone());
        engine.set_journal_label(format!(
            "{}/{}",
            model.name,
            if gene.is_exact() {
                "prune-baseline".to_owned()
            } else {
                // Tag the series with the gene so journals from
                // different graded levels stay distinguishable.
                format!("prune-cross-{}", gene.tag())
            }
        ));
        let mut strategy = search.build();
        let outcome = engine.run(strategy.as_mut())?;
        Ok((outcome.points.into_iter().map(|(_, p)| p).collect(), outcome.stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_ml::quant::QuantSpec;
    use pax_ml::synth_data::blobs;
    use pax_ml::train::svm::{train_svm_classifier, SvmParams};

    fn small_study() -> CircuitStudy {
        let data = blobs("fw", 260, 4, 3, 0.09, 123);
        let (train, test) = data.split(0.7, 1);
        let (train, test) = pax_ml::normalize(&train, &test);
        let m = train_svm_classifier(&train, &SvmParams { epochs: 50, ..Default::default() }, 3);
        let q = QuantizedModel::from_linear_classifier("fw", &m, QuantSpec::default());
        Framework::new(FrameworkConfig::default()).run_study(&q, &train, &test)
    }

    #[test]
    fn study_produces_all_series() {
        let s = small_study();
        assert_eq!(s.baseline.technique, Technique::Exact);
        assert_eq!(s.coeff.technique, Technique::CoeffApprox);
        assert!(!s.prune_only.is_empty());
        assert!(!s.cross.is_empty());
        assert!(s.stats.designs_explored >= s.stats.designs_unique);
        assert!(s.stats.total_ms() > 0);
    }

    #[test]
    fn coefficient_approximation_shrinks_area_at_similar_accuracy() {
        let s = small_study();
        assert!(
            s.coeff.area_mm2 <= s.baseline.area_mm2,
            "coeff {} vs baseline {}",
            s.coeff.area_mm2,
            s.baseline.area_mm2
        );
        assert!(
            s.coeff.accuracy >= s.baseline.accuracy - 0.05,
            "accuracy collapsed: {} vs {}",
            s.coeff.accuracy,
            s.baseline.accuracy
        );
    }

    #[test]
    fn pareto_front_is_non_empty_and_dominant() {
        let s = small_study();
        let front = s.pareto_front();
        assert!(!front.is_empty());
        // The front must contain a point at least as accurate as any
        // other point.
        let max_acc = s.all_points().iter().map(|p| p.accuracy).fold(0.0, f64::max);
        assert!(front.iter().any(|p| (p.accuracy - max_acc).abs() < 1e-12));
    }

    #[test]
    fn materialize_reproduces_measured_metrics() {
        let data = blobs("mt", 220, 3, 3, 0.09, 321);
        let (train, test) = data.split(0.7, 1);
        let (train, test) = pax_ml::normalize(&train, &test);
        let m = train_svm_classifier(&train, &SvmParams { epochs: 40, ..Default::default() }, 3);
        let q = QuantizedModel::from_linear_classifier("mt", &m, QuantSpec::default());
        let fw = Framework::new(FrameworkConfig::default());
        let study = fw.run_study(&q, &train, &test);
        // Pick an interesting cross-layer point (max pruning).
        let point = study
            .cross
            .iter()
            .min_by(|a, b| a.area_mm2.partial_cmp(&b.area_mm2).unwrap())
            .expect("cross series non-empty");
        let nl = fw.materialize(&q, &train, point);
        let re = fw.measure(&nl, &q, &test, point.technique);
        assert!((re.area_mm2 - point.area_mm2).abs() < 1e-9, "area must reproduce");
        assert!((re.accuracy - point.accuracy).abs() < 1e-12, "accuracy must reproduce");
        // The baseline materializes to the measured baseline too.
        let base_nl = fw.materialize(&q, &train, &study.baseline);
        let base_re = fw.measure(&base_nl, &q, &test, Technique::Exact);
        assert!((base_re.area_mm2 - study.baseline.area_mm2).abs() < 1e-9);
    }

    #[test]
    fn materialize_with_cached_analysis_matches_uncached() {
        let data = blobs("ca", 220, 3, 3, 0.09, 654);
        let (train, test) = data.split(0.7, 1);
        let (train, test) = pax_ml::normalize(&train, &test);
        let m = train_svm_classifier(&train, &SvmParams { epochs: 40, ..Default::default() }, 3);
        let q = QuantizedModel::from_linear_classifier("ca", &m, QuantSpec::default());
        let fw = Framework::new(FrameworkConfig::default());
        let study = fw.run_study(&q, &train, &test);
        let point = study
            .prune_only
            .iter()
            .find(|p| p.tau_c.is_some())
            .expect("pruned points exist")
            .clone();
        // The analysis a study driver would already hold: computed on
        // the same optimized base circuit.
        let base = {
            let c = BespokeCircuit::generate(&q);
            opt::optimize(&c.netlist)
        };
        let analysis = analyze(&base, &q, &train);
        let (cached_nl, cached_model) =
            fw.materialize_with_model_cached(&q, &train, &point, Some(&analysis));
        let (fresh_nl, fresh_model) = fw.materialize_with_model(&q, &train, &point);
        assert_eq!(cached_nl, fresh_nl, "cached analysis must not change the materialization");
        assert_eq!(cached_model.name, fresh_model.name);
    }

    #[test]
    #[should_panic(expected = "cached analysis does not match")]
    fn mismatched_cached_analysis_is_rejected() {
        let data = blobs("cb", 220, 3, 3, 0.09, 655);
        let (train, test) = data.split(0.7, 1);
        let (train, test) = pax_ml::normalize(&train, &test);
        let m = train_svm_classifier(&train, &SvmParams { epochs: 40, ..Default::default() }, 3);
        let q = QuantizedModel::from_linear_classifier("cb", &m, QuantSpec::default());
        let fw = Framework::new(FrameworkConfig::default());
        let study = fw.run_study(&q, &train, &test);
        let point = study.prune_only.iter().find(|p| p.tau_c.is_some()).unwrap().clone();
        // An analysis over a *different* (unoptimized) netlist must be
        // rejected instead of silently mis-pruning.
        let wrong = analyze(&BespokeCircuit::generate(&q).netlist, &q, &train);
        let _ = fw.materialize_with_model_cached(&q, &train, &point, Some(&wrong));
    }

    #[test]
    fn evolutionary_study_is_deterministic_and_budgeted() {
        let data = blobs("evo", 240, 4, 3, 0.09, 55);
        let (train, test) = data.split(0.7, 1);
        let (train, test) = pax_ml::normalize(&train, &test);
        let m = train_svm_classifier(&train, &SvmParams { epochs: 40, ..Default::default() }, 3);
        let q = QuantizedModel::from_linear_classifier("evo", &m, QuantSpec::default());
        let fw = Framework::new(FrameworkConfig::default());
        let search = SearchConfig::nsga2(Nsga2Config {
            population: 8,
            generations: 4,
            max_evals: 12,
            seed: 33,
            ..Default::default()
        });
        let a = fw.run_study_with(&q, &train, &test, &search);
        let b = fw.run_study_with(&q, &train, &test, &search);
        // Same seed, same genomes, same designs — repeated-run equality.
        assert_eq!(a.prune_only, b.prune_only);
        assert_eq!(a.cross, b.cross);
        assert_eq!(a.stats.search, b.stats.search);
        // The budget bounds fresh evaluations per exploration.
        for s in &a.stats.search {
            assert_eq!(s.strategy, "nsga2");
            assert!(s.evaluated <= 12, "budget violated: {}", s.evaluated);
        }
        assert!(!a.cross.is_empty());
    }

    #[test]
    fn joint_coeff_axis_study_splits_series_by_gene() {
        let data = blobs("joint", 240, 4, 3, 0.09, 88);
        let (train, test) = data.split(0.7, 1);
        let (train, test) = pax_ml::normalize(&train, &test);
        let m = train_svm_classifier(&train, &SvmParams { epochs: 40, ..Default::default() }, 3);
        let q = QuantizedModel::from_linear_classifier("joint", &m, QuantSpec::default());
        let fw = Framework::new(FrameworkConfig::default());
        let search = SearchConfig::exhaustive().with_coeff_levels(vec![4]);
        let s = fw.run_study_with(&q, &train, &test, &search);
        // One joint exploration produced both series, split by gene.
        assert_eq!(s.stats.search.len(), 1, "one joint exploration");
        assert_eq!(s.stats.prune_baseline_ms, 0, "joint wall-clock bills the cross bucket");
        assert!(!s.prune_only.is_empty(), "exact-gene points");
        assert!(!s.cross.is_empty(), "graded-gene points");
        assert!(s.prune_only.iter().all(|p| p.technique == Technique::PruneOnly));
        assert!(s.cross.iter().all(|p| p.technique == Technique::Cross));
        // With one graded level equal to the configured `e`, the joint
        // cross series matches the legacy two-pass cross series point
        // for point (same base circuit, same sweep).
        let legacy = fw.run_study(&q, &train, &test);
        assert_eq!(s.cross, legacy.cross, "level-1 gene reproduces the two-pass cross sweep");
        assert_eq!(s.prune_only, legacy.prune_only, "exact gene reproduces the baseline sweep");
        // Determinism: the joint flow reproduces itself.
        let again = fw.run_study_with(&q, &train, &test, &search);
        assert_eq!(s.cross, again.cross);
        assert_eq!(s.prune_only, again.prune_only);
    }

    #[test]
    fn three_objective_study_surfaces_per_axis_stats() {
        let data = blobs("nd", 240, 4, 3, 0.09, 77);
        let (train, test) = data.split(0.7, 1);
        let (train, test) = pax_ml::normalize(&train, &test);
        let m = train_svm_classifier(&train, &SvmParams { epochs: 40, ..Default::default() }, 3);
        let q = QuantizedModel::from_linear_classifier("nd", &m, QuantSpec::default());
        let fw = Framework::new(FrameworkConfig::default());
        let search = SearchConfig::exhaustive()
            .with_objectives(crate::explore::ObjectiveSet::accuracy_area_power());
        let s = fw.run_study_with(&q, &train, &test, &search);
        for stats in &s.stats.search {
            assert_eq!(stats.objectives, vec!["accuracy", "area_mm2", "power_mw"]);
            assert_eq!(stats.axes.len(), 3, "one AxisStats per enabled axis");
            for axis in &stats.axes {
                let (lo, hi) = (axis.best.min(axis.worst), axis.best.max(axis.worst));
                assert!(lo.is_finite() && hi.is_finite());
                if axis.axis == "accuracy" {
                    assert!(axis.best >= axis.worst, "accuracy is maximized");
                } else {
                    assert!(axis.best <= axis.worst, "{} is minimized", axis.axis);
                }
            }
        }
    }

    #[test]
    fn exhaustive_engine_matches_legacy_grid_sweep() {
        // Golden reproduction: the engine-driven default study must
        // equal the pre-refactor enumerate_grid + evaluate_grid flow.
        let data = blobs("legacy", 230, 3, 3, 0.09, 91);
        let (train, test) = data.split(0.7, 1);
        let (train, test) = pax_ml::normalize(&train, &test);
        let m = train_svm_classifier(&train, &SvmParams { epochs: 40, ..Default::default() }, 3);
        let q = QuantizedModel::from_linear_classifier("legacy", &m, QuantSpec::default());
        let fw = Framework::new(FrameworkConfig::default());
        let study = fw.run_study(&q, &train, &test);

        let circuit = {
            let c = BespokeCircuit::generate(&q);
            c.with_netlist(opt::optimize(&c.netlist))
        };
        let analysis = analyze(&circuit.netlist, &q, &train);
        let grid = crate::prune::enumerate_grid(&analysis, &fw.config().prune);
        let evals = crate::prune::evaluate_grid(
            &circuit.netlist,
            &q,
            &test,
            fw.library(),
            &fw.config().tech,
            &analysis,
            &grid,
        );
        let legacy: Vec<DesignPoint> = grid
            .combos
            .iter()
            .map(|combo| {
                let e = &evals[combo.set];
                DesignPoint {
                    technique: Technique::PruneOnly,
                    tau_c: Some(combo.tau_c),
                    phi_c: Some(combo.phi_c),
                    coeff: None,
                    accuracy: e.accuracy,
                    area_mm2: e.area_mm2,
                    power_mw: e.power_mw,
                    gate_count: e.gate_count,
                    critical_ms: e.critical_ms,
                }
            })
            .collect();
        assert_eq!(study.prune_only, legacy, "engine sweep must be bit-for-bit identical");
        assert_eq!(study.stats.search[0].asked, grid.n_designs());
        assert_eq!(study.stats.search[0].evaluated, grid.n_unique());
    }

    #[test]
    fn table2_selection_respects_loss_budget() {
        let s = small_study();
        for t in [Technique::CoeffApprox, Technique::PruneOnly, Technique::Cross] {
            let best = s.best_within_loss(t, 0.01);
            assert!(best.accuracy >= s.baseline.accuracy - 0.01 - 1e-12);
            assert!(best.area_mm2 <= s.baseline.area_mm2 + 1e-9);
        }
        let cross = s.best_within_loss(Technique::Cross, 0.01);
        let coeff = s.best_within_loss(Technique::CoeffApprox, 0.01);
        assert!(cross.area_mm2 <= coeff.area_mm2 + 1e-9, "cross can use coeff's design");
    }
}
