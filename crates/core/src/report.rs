//! Report emission: CSV series for the figures, markdown rows for the
//! tables. The `pax-bench` binaries assemble these into the full paper
//! artifacts.

use std::fmt::Write as _;

use crate::framework::CircuitStudy;
use crate::{pareto, DesignPoint, Technique};

/// CSV of every design of a study, normalized to the baseline area —
/// one Fig. 3 subplot. Columns:
/// `technique,tau_c,phi_c,coeff,accuracy,area_mm2,norm_area,power_mw`
/// (`coeff` is the winning coefficient gene, empty for exact-base
/// points).
pub fn fig3_csv(study: &CircuitStudy) -> String {
    let base = study.baseline.area_mm2;
    let mut out =
        String::from("technique,tau_c,phi_c,coeff,accuracy,area_mm2,norm_area,power_mw\n");
    for p in study.all_points() {
        let _ = writeln!(out, "{}", point_csv_row(p, base));
    }
    out
}

/// CSV of the Pareto front of a study (same columns as [`fig3_csv`]).
pub fn pareto_csv(study: &CircuitStudy) -> String {
    let base = study.baseline.area_mm2;
    let mut out =
        String::from("technique,tau_c,phi_c,coeff,accuracy,area_mm2,norm_area,power_mw\n");
    for p in study.pareto_front() {
        let _ = writeln!(out, "{}", point_csv_row(&p, base));
    }
    out
}

/// One data row of the Fig. 3 CSVs (no trailing newline).
fn point_csv_row(p: &DesignPoint, base: f64) -> String {
    format!(
        "{},{},{},{},{:.6},{:.3},{:.4},{:.3}",
        p.technique.label(),
        p.tau_c.map_or(String::new(), |t| format!("{t:.2}")),
        p.phi_c.map_or(String::new(), |f| f.to_string()),
        p.coeff.map_or(String::new(), |g| g.to_string()),
        p.accuracy,
        p.area_mm2,
        p.norm_area(base),
        p.power_mw,
    )
}

/// One Table II row: per technique the <`max_loss` area optimum with
/// area/power gains versus the baseline, plus the battery verdicts.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Circuit identifier (e.g. `"cardio mlp-c"`).
    pub circuit: String,
    /// Selected design per technique: (cross, coeff-only, prune-only).
    pub cross: TechniqueCell,
    /// Coefficient-approximation-only cell.
    pub coeff: TechniqueCell,
    /// Pruning-only cell.
    pub prune: TechniqueCell,
}

/// One technique's entry in Table II.
#[derive(Debug, Clone)]
pub struct TechniqueCell {
    /// Area in cm².
    pub area_cm2: f64,
    /// Power in mW.
    pub power_mw: f64,
    /// Area gain vs. baseline, percent.
    pub area_gain_pct: f64,
    /// Power gain vs. baseline, percent.
    pub power_gain_pct: f64,
    /// Whether one printed Molex 30 mW battery suffices.
    pub battery_ok: bool,
}

/// Builds the Table II row of a study.
pub fn table2_row(study: &CircuitStudy, max_loss: f64, battery_mw: f64) -> Table2Row {
    let cell = |p: &DesignPoint| TechniqueCell {
        area_cm2: p.area_cm2(),
        power_mw: p.power_mw,
        area_gain_pct: gain_pct(study.baseline.area_mm2, p.area_mm2),
        power_gain_pct: gain_pct(study.baseline.power_mw, p.power_mw),
        battery_ok: p.power_mw <= battery_mw,
    };
    Table2Row {
        circuit: format!("{} {}", study.name, study.kind.tag()),
        cross: cell(&study.best_within_loss(Technique::Cross, max_loss)),
        coeff: cell(&study.best_within_loss(Technique::CoeffApprox, max_loss)),
        prune: cell(&study.best_within_loss(Technique::PruneOnly, max_loss)),
    }
}

fn gain_pct(base: f64, value: f64) -> f64 {
    if base <= 0.0 {
        0.0
    } else {
        (base - value) / base * 100.0
    }
}

/// Markdown rendering of a set of Table II rows, paper layout.
pub fn table2_markdown(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "| ML Circuit | Cross A (cm²) | P (mW) | AG % | PG % | Coeff A | P | AG | PG | Prune A | P | AG | PG |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|---|---|---|---|---|---|\n");
    for r in rows {
        let c = |cell: &TechniqueCell| {
            let star = if cell.battery_ok { "*" } else { "" };
            format!(
                "{:.1}{star} | {:.1} | {:.0} | {:.0}",
                cell.area_cm2, cell.power_mw, cell.area_gain_pct, cell.power_gain_pct
            )
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            r.circuit,
            c(&r.cross),
            c(&r.coeff),
            c(&r.prune)
        );
    }
    out.push_str("\n`*` = powered by one Molex 30 mW printed battery\n");
    out
}

/// Summary statistics across studies: the paper's headline numbers
/// ("47% and 44% average area and power reduction").
#[derive(Debug, Clone, Default)]
pub struct GainSummary {
    /// Mean area gain (%), cross-layer technique.
    pub cross_area: f64,
    /// Mean power gain (%), cross-layer technique.
    pub cross_power: f64,
    /// Mean area gain (%), coefficient approximation only.
    pub coeff_area: f64,
    /// Mean power gain (%), coefficient approximation only.
    pub coeff_power: f64,
    /// Mean area gain (%), pruning only.
    pub prune_area: f64,
    /// Mean power gain (%), pruning only.
    pub prune_power: f64,
}

/// Averages the Table II gains over a set of rows.
pub fn summarize_gains(rows: &[Table2Row]) -> GainSummary {
    if rows.is_empty() {
        return GainSummary::default();
    }
    let n = rows.len() as f64;
    let mut s = GainSummary::default();
    for r in rows {
        s.cross_area += r.cross.area_gain_pct;
        s.cross_power += r.cross.power_gain_pct;
        s.coeff_area += r.coeff.area_gain_pct;
        s.coeff_power += r.coeff.power_gain_pct;
        s.prune_area += r.prune.area_gain_pct;
        s.prune_power += r.prune.power_gain_pct;
    }
    s.cross_area /= n;
    s.cross_power /= n;
    s.coeff_area /= n;
    s.coeff_power /= n;
    s.prune_area /= n;
    s.prune_power /= n;
    s
}

/// Indices of a study's Pareto front among `all_points()` — convenience
/// for tests and plots.
pub fn front_indices(study: &CircuitStudy) -> Vec<usize> {
    let pts: Vec<DesignPoint> = study.all_points().into_iter().cloned().collect();
    pareto::pareto_front(&pts)
}

/// Markdown table of a study's per-exploration search statistics: which
/// strategy drove each pruning series, the objective axes it optimized,
/// how many designs it asked for, how many distinct prunings were
/// synthesized, and how many evaluations the content-hash cache
/// absorbed. [`axis_summary`] breaks the resulting fronts down per
/// objective axis.
pub fn search_summary(study: &CircuitStudy) -> String {
    let mut out = String::from(
        "| Series | Strategy | Objectives | Asked | Evaluated | Cache hits | Rounds |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|\n");
    for (i, s) in study.stats.search.iter().enumerate() {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} |",
            series_label(i),
            s.strategy,
            s.objectives.join("×"),
            s.asked,
            s.evaluated,
            s.cache_hits,
            s.generations,
        );
    }
    out
}

/// Markdown table of the per-axis front extremes of every exploration
/// series: for each enabled objective axis, the best and worst value on
/// the series' final Pareto front (best respects the axis direction —
/// highest accuracy, lowest area/power/delay).
pub fn axis_summary(study: &CircuitStudy) -> String {
    let mut out = String::from("| Series | Axis | Front best | Front worst |\n");
    out.push_str("|---|---|---|---|\n");
    for (i, s) in study.stats.search.iter().enumerate() {
        for axis in &s.axes {
            let _ = writeln!(
                out,
                "| {} | {} | {:.4} | {:.4} |",
                series_label(i),
                axis.axis,
                axis.best,
                axis.worst,
            );
        }
    }
    out
}

/// Markdown table of the per-series evaluation telemetry: the final
/// front size and hypervolume (against the run's fixed reference
/// point), then one row per evaluation phase with its call count, total
/// wall time and share of the phase-accounted time. Complements
/// [`search_summary`] (what was searched) with *where the time went*.
/// Series that ran delta evaluation get one trailing line each with
/// the delta-fold hit rate (delta folds over all folds) and the mean
/// substitution-delta size.
pub fn telemetry_summary(study: &CircuitStudy) -> String {
    let mut out =
        String::from("| Series | Front | Hypervolume | Phase | Calls | Wall ms | Share |\n");
    out.push_str("|---|---|---|---|---|---|---|\n");
    let mut delta_lines = String::new();
    for (i, s) in study.stats.search.iter().enumerate() {
        let d = &s.telemetry.delta;
        if let (Some(rate), Some(mean)) = (d.hit_rate(), d.mean_delta()) {
            let _ = writeln!(
                delta_lines,
                "Delta folds ({}): {}/{} ({:.0}% hit rate, mean delta {:.1} nets)",
                series_label(i),
                d.delta_folds,
                d.delta_folds + d.full_folds,
                rate * 100.0,
                mean,
            );
        }
        let total_ns = s.telemetry.phases.total_ns();
        let hv = s.hypervolume.map_or_else(|| "—".to_owned(), |h| format!("{h:.4}"));
        let mut first = true;
        for p in &s.telemetry.phases.phases {
            if p.calls == 0 {
                continue;
            }
            let (series, front, hv_cell) = if first {
                (series_label(i), format!("{}", s.front_size), hv.clone())
            } else {
                ("", String::new(), String::new())
            };
            first = false;
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} | {:.1} | {:.0}% |",
                series,
                front,
                hv_cell,
                p.name,
                p.calls,
                p.ns as f64 / 1e6,
                if total_ns == 0 { 0.0 } else { p.ns as f64 / total_ns as f64 * 100.0 },
            );
        }
        if first {
            // No phase ran (e.g. nothing was measured): still show the
            // series so the table enumerates every search.
            let _ = writeln!(
                out,
                "| {} | {} | {} | — | 0 | 0.0 | 0% |",
                series_label(i),
                s.front_size,
                hv,
            );
        }
    }
    if !delta_lines.is_empty() {
        out.push('\n');
        out.push_str(&delta_lines);
    }
    out
}

/// Name of the i-th exploration series of a study (baseline pruning
/// first, then the cross-layer pruning).
fn series_label(i: usize) -> &'static str {
    ["prune-baseline", "prune-cross"].get(i).copied().unwrap_or("extra")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{CircuitStudy, ExecStats};
    use crate::{DesignPoint, Technique};
    use pax_ml::quant::ModelKind;

    fn point(t: Technique, acc: f64, area: f64, power: f64) -> DesignPoint {
        DesignPoint {
            technique: t,
            tau_c: if t == Technique::Cross { Some(0.9) } else { None },
            phi_c: if t == Technique::Cross { Some(3) } else { None },
            coeff: None,
            accuracy: acc,
            area_mm2: area,
            power_mw: power,
            gate_count: 100,
            critical_ms: 50.0,
        }
    }

    fn fake_study() -> CircuitStudy {
        CircuitStudy {
            name: "demo".into(),
            kind: ModelKind::SvmC,
            baseline: point(Technique::Exact, 0.90, 1000.0, 40.0),
            coeff: point(Technique::CoeffApprox, 0.895, 700.0, 29.0),
            prune_only: vec![point(Technique::PruneOnly, 0.893, 800.0, 33.0)],
            cross: vec![
                point(Technique::Cross, 0.893, 500.0, 22.0),
                point(Technique::Cross, 0.85, 300.0, 15.0),
            ],
            coeff_report: crate::coeff_approx::CoeffApproxReport { sums: vec![] },
            stats: ExecStats::default(),
        }
    }

    #[test]
    fn fig3_csv_lists_every_point_with_norm_area() {
        let s = fake_study();
        let csv = fig3_csv(&s);
        assert_eq!(csv.lines().count(), 1 + 5);
        assert!(csv.contains("exact,,,,0.900000,1000.000,1.0000,40.000"));
        assert!(csv.contains("cross-layer,0.90,3"));
        assert!(csv.contains(",0.5000,")); // 500/1000 normalized
    }

    #[test]
    fn table2_row_computes_gains_and_battery() {
        let s = fake_study();
        let row = table2_row(&s, 0.01, 30.0);
        assert!((row.cross.area_gain_pct - 50.0).abs() < 1e-9);
        assert!((row.cross.power_gain_pct - 45.0).abs() < 1e-9);
        assert!(row.cross.battery_ok);
        assert!(row.coeff.battery_ok != (29.0 > 30.0) || row.coeff.battery_ok);
        assert!((row.prune.area_gain_pct - 20.0).abs() < 1e-9);
        let md = table2_markdown(&[row]);
        assert!(md.contains("demo svm-c"));
        assert!(md.contains("Molex"));
    }

    #[test]
    fn gains_average_across_rows() {
        let s = fake_study();
        let rows = vec![table2_row(&s, 0.01, 30.0), table2_row(&s, 0.01, 30.0)];
        let g = summarize_gains(&rows);
        assert!((g.cross_area - 50.0).abs() < 1e-9);
        assert!((g.coeff_area - 30.0).abs() < 1e-9);
    }

    #[test]
    fn search_summary_lists_each_series() {
        let mut s = fake_study();
        s.stats.search = vec![
            crate::explore::SearchStats {
                strategy: "exhaustive-grid".into(),
                asked: 40,
                evaluated: 12,
                cache_hits: 28,
                generations: 1,
                objectives: vec!["accuracy".into(), "area_mm2".into()],
                axes: vec![
                    crate::explore::AxisStats { axis: "accuracy".into(), best: 0.9, worst: 0.85 },
                    crate::explore::AxisStats {
                        axis: "area_mm2".into(),
                        best: 300.0,
                        worst: 500.0,
                    },
                ],
                ..Default::default()
            },
            crate::explore::SearchStats {
                strategy: "nsga2".into(),
                asked: 48,
                evaluated: 9,
                cache_hits: 39,
                generations: 2,
                objectives: vec!["accuracy".into(), "area_mm2".into(), "power_mw".into()],
                axes: vec![],
                ..Default::default()
            },
        ];
        let md = search_summary(&s);
        assert!(md.contains(
            "| prune-baseline | exhaustive-grid | accuracy×area_mm2 | 40 | 12 | 28 | 1 |"
        ));
        assert!(
            md.contains("| prune-cross | nsga2 | accuracy×area_mm2×power_mw | 48 | 9 | 39 | 2 |")
        );
        let axes = axis_summary(&s);
        assert!(axes.contains("| prune-baseline | accuracy | 0.9000 | 0.8500 |"));
        assert!(axes.contains("| prune-baseline | area_mm2 | 300.0000 | 500.0000 |"));
        assert!(!axes.contains("| prune-cross |"), "empty axis stats emit no rows");
    }

    #[test]
    fn telemetry_summary_lists_phases_and_front() {
        let mut s = fake_study();
        s.stats.search = vec![
            crate::explore::SearchStats {
                strategy: "nsga2".into(),
                front_size: 7,
                hypervolume: Some(0.8123),
                hv_ref: vec![0.0, 1000.0],
                telemetry: crate::explore::SearchTelemetry {
                    phases: pax_obs::PhasesSnapshot {
                        phases: vec![
                            pax_obs::PhaseStat { name: "resolve", calls: 3, ns: 1_000_000 },
                            pax_obs::PhaseStat { name: "fold", calls: 0, ns: 0 },
                            pax_obs::PhaseStat { name: "masked-sim", calls: 40, ns: 3_000_000 },
                        ],
                    },
                    wall_ms: 12.0,
                    delta: crate::prune::DeltaFoldStats {
                        delta_folds: 30,
                        full_folds: 10,
                        delta_nets: 96,
                    },
                },
                ..Default::default()
            },
            crate::explore::SearchStats::default(),
        ];
        let md = telemetry_summary(&s);
        assert!(md.contains("| prune-baseline | 7 | 0.8123 | resolve | 3 | 1.0 | 25% |"), "{md}");
        assert!(md.contains("|  |  |  | masked-sim | 40 | 3.0 | 75% |"), "{md}");
        assert!(!md.contains("| fold |"), "zero-call phases emit no rows: {md}");
        assert!(md.contains("| prune-cross | 0 | — | — | 0 | 0.0 | 0% |"), "{md}");
        assert!(
            md.contains("Delta folds (prune-baseline): 30/40 (75% hit rate, mean delta 3.2 nets)"),
            "{md}"
        );
        assert!(!md.contains("Delta folds (prune-cross)"), "fold-free series emit no line: {md}");
    }

    #[test]
    fn pareto_csv_subsets_fig3() {
        let s = fake_study();
        let front = pareto_csv(&s);
        let all = fig3_csv(&s);
        for line in front.lines().skip(1) {
            assert!(all.contains(line), "front line missing from full set: {line}");
        }
    }
}
