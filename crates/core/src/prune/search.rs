use std::collections::{BTreeMap, HashMap};

use egt_pdk::{Library, TechParams};
use pax_bespoke::try_evaluate_compiled;
use pax_ml::quant::QuantizedModel;
use pax_ml::Dataset;
use pax_netlist::{NetId, Netlist};
use pax_synth::{area, opt};

use super::overlay::OverlayContext;
use super::{PruneAnalysis, PruneConfig};
use crate::error::StudyError;

/// Content hash of a sorted pruned-gate set (FNV-1a over the net
/// indices, salted with the set length). Used to key the grid dedup map
/// and the exploration engine's evaluation cache without cloning full
/// gate vectors.
pub(crate) fn gate_set_hash(set: &[NetId]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET ^ (set.len() as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for &g in set {
        let mut v = g.index() as u64;
        for _ in 0..8 {
            h ^= v & 0xFF;
            h = h.wrapping_mul(PRIME);
            v >>= 8;
        }
    }
    h
}

/// One explored `(τc, φc)` grid combination.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridCombo {
    /// The τ threshold (fraction, e.g. 0.93).
    pub tau_c: f64,
    /// The φ threshold (score-bit significance; −1 allows only
    /// observation-blind gates).
    pub phi_c: i64,
    /// Index into [`PruneGrid::sets`] of the pruned-gate set this combo
    /// produces.
    pub set: usize,
}

/// The full exploration grid: all combos plus the deduplicated pruned
/// sets they map to.
#[derive(Debug, Clone)]
pub struct PruneGrid {
    /// Every explored `(τc, φc)` pair in exploration order.
    pub combos: Vec<GridCombo>,
    /// Distinct pruned-gate sets (each a sorted gate list).
    pub sets: Vec<Vec<NetId>>,
}

impl PruneGrid {
    /// Number of explored designs (the paper counts combos; > 4300 in
    /// total across its 28 explorations).
    pub fn n_designs(&self) -> usize {
        self.combos.len()
    }

    /// Number of distinct prunings that actually need evaluation.
    pub fn n_unique(&self) -> usize {
        self.sets.len()
    }
}

/// Enumerates the paper's full search: every τc step, and per τc every
/// relevant φc from the qualified gates' distinct φ values.
pub fn enumerate_grid(analysis: &PruneAnalysis, cfg: &PruneConfig) -> PruneGrid {
    let mut combos = Vec::new();
    let mut sets: Vec<Vec<NetId>> = Vec::new();
    // Keyed by the 64-bit content hash of the sorted set: large grids
    // repeat the same pruning hundreds of times, and hashing beats
    // cloning a full `Vec<NetId>` per combo. Debug builds verify that a
    // hash hit really is the same set.
    let mut dedup: HashMap<u64, usize> = HashMap::new();

    for tau_c in cfg.tau_values() {
        // Step 3: gates whose dominant-value fraction meets the
        // threshold (see DESIGN.md on the τ ≥ τc reading).
        let qualified: Vec<NetId> = analysis
            .candidates
            .iter()
            .copied()
            .filter(|&g| analysis.tau_of(g) >= tau_c - 1e-12)
            .collect();
        // Φτ: the relevant φc values for this τc.
        let mut phis: Vec<i64> = qualified.iter().map(|&g| analysis.phi_of(g)).collect();
        phis.sort_unstable();
        phis.dedup();

        for phi_c in phis {
            let mut set: Vec<NetId> =
                qualified.iter().copied().filter(|&g| analysis.phi_of(g) <= phi_c).collect();
            set.sort_unstable();
            let idx = match dedup.entry(gate_set_hash(&set)) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    let idx = *o.get();
                    debug_assert_eq!(sets[idx], set, "gate-set hash collision");
                    idx
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    sets.push(set);
                    *v.insert(sets.len() - 1)
                }
            };
            combos.push(GridCombo { tau_c, phi_c, set: idx });
        }
    }
    PruneGrid { combos, sets }
}

/// Metrics of one evaluated pruned design.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneEval {
    /// Printed area in mm² after re-synthesis.
    pub area_mm2: f64,
    /// Total power in mW on the test-set activity.
    pub power_mw: f64,
    /// Test-set accuracy.
    pub accuracy: f64,
    /// Remaining gate count.
    pub gate_count: usize,
    /// Critical path in ms.
    pub critical_ms: f64,
    /// Number of gates pruned (before re-synthesis side effects).
    pub n_pruned: usize,
}

/// Applies one pruned set to the base netlist: constants substituted,
/// then constant propagation + dead-cone sweep (paper steps 4–5).
pub fn apply_set(base: &Netlist, analysis: &PruneAnalysis, set: &[NetId]) -> Netlist {
    let subst: BTreeMap<NetId, bool> = set.iter().map(|&g| (g, analysis.dominant(g))).collect();
    opt::apply_constants(base, &subst)
}

/// Evaluates every distinct pruned set of the grid in parallel over one
/// shared [`OverlayContext`]: masked simulation of the shared compiled
/// tape, symbolic fold for the surviving structure, incremental
/// re-timing — no per-candidate re-synthesis or recompilation, with
/// results bit-identical to the legacy rebuild pipeline (kept as
/// [`try_evaluate_set_rebuild`], the differential-test oracle).
///
/// Returns one [`PruneEval`] per entry of `grid.sets`.
///
/// # Panics
///
/// Panics when the library does not cover the circuit or the dataset
/// does not match the model — [`try_evaluate_grid`] surfaces those as
/// [`StudyError`] instead.
pub fn evaluate_grid(
    base: &Netlist,
    model: &QuantizedModel,
    test: &Dataset,
    lib: &Library,
    tech: &TechParams,
    analysis: &PruneAnalysis,
    grid: &PruneGrid,
) -> Vec<PruneEval> {
    try_evaluate_grid(base, model, test, lib, tech, analysis, grid)
        .unwrap_or_else(|e| panic!("{e}"))
}

/// [`evaluate_grid`] surfacing library/simulation problems as
/// [`StudyError`] instead of panicking. The first failing candidate
/// aborts the remaining (expensive) evaluations.
pub fn try_evaluate_grid(
    base: &Netlist,
    model: &QuantizedModel,
    test: &Dataset,
    lib: &Library,
    tech: &TechParams,
    analysis: &PruneAnalysis,
    grid: &PruneGrid,
) -> Result<Vec<PruneEval>, StudyError> {
    let n = grid.sets.len();
    if n == 0 {
        return Ok(Vec::new());
    }
    let ctx = OverlayContext::new(base, model, test, lib, tech)?;
    // Work-stealing over a shared counter: set sizes (and thus fold and
    // cone costs) vary wildly, so static chunking would leave threads
    // idle. Results stream back over a channel; the first error trips
    // the abort flag so the other workers stop draining the grid.
    let next = std::sync::atomic::AtomicUsize::new(0);
    let abort = std::sync::atomic::AtomicBool::new(false);
    let threads = std::thread::available_parallelism().map_or(4, |t| t.get()).min(16).min(n);
    let (tx, rx) = std::sync::mpsc::channel::<Result<(usize, PruneEval), StudyError>>();
    let collected: Vec<Result<(usize, PruneEval), StudyError>> = std::thread::scope(|s| {
        for _ in 0..threads {
            let next = &next;
            let abort = &abort;
            let ctx = &ctx;
            let tx = tx.clone();
            s.spawn(move || loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n || abort.load(std::sync::atomic::Ordering::Relaxed) {
                    break;
                }
                let r = ctx.evaluate(analysis, &grid.sets[i]);
                let stop = r.is_err();
                if stop {
                    abort.store(true, std::sync::atomic::Ordering::Relaxed);
                }
                tx.send(r.map(|e| (i, e))).expect("receiver outlives workers");
                if stop {
                    break;
                }
            });
        }
        drop(tx);
        rx.iter().collect()
    });
    let mut results: Vec<Option<PruneEval>> = vec![None; n];
    for r in collected {
        let (i, e) = r?;
        results[i] = Some(e);
    }
    results.into_iter().map(|r| r.ok_or(StudyError::IncompleteGrid)).collect()
}

/// The legacy per-set pipeline: prune, re-synthesize, recompile,
/// re-simulate and walk area/power/timing on the rebuilt netlist.
///
/// Production evaluation runs on the overlay
/// ([`OverlayContext::evaluate`]); this path is kept as the
/// **differential oracle** — `tests/proptest_overlay.rs` pins the
/// overlay bit-for-bit against it on every axis — and as the
/// [`EvalMode::Rebuild`](crate::explore::EvalMode) benchmark baseline.
pub fn try_evaluate_set_rebuild(
    base: &Netlist,
    model: &QuantizedModel,
    test: &Dataset,
    lib: &Library,
    tech: &TechParams,
    analysis: &PruneAnalysis,
    set: &[NetId],
) -> Result<PruneEval, StudyError> {
    let pruned = apply_set(base, analysis, set);
    // Compile the candidate's tape single-threaded: this function runs
    // inside an already-saturated worker pool, so nested
    // word-parallelism would only oversubscribe the cores.
    let tape = pax_sim::CompiledNetlist::compile(&pruned).with_threads(1);
    let outcome = try_evaluate_compiled(&tape, model, test)?;
    let area = area::area_mm2(&pruned, lib)?;
    let power = pax_sim::power::power(&pruned, lib, tech, &outcome.sim.activity)?;
    let timing = pax_sta::analyze(&pruned, lib, tech)?;
    Ok(PruneEval {
        area_mm2: area,
        power_mw: power.total_mw(),
        accuracy: outcome.accuracy,
        gate_count: pruned.gate_count(),
        critical_ms: timing.critical_path_ms,
        n_pruned: set.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::analyze;
    use pax_bespoke::BespokeCircuit;
    use pax_ml::quant::QuantSpec;
    use pax_ml::synth_data::blobs;

    fn setup() -> (BespokeCircuit, Dataset, Dataset) {
        let data = blobs("b", 300, 3, 3, 0.09, 77);
        let (train, test) = data.split(0.7, 1);
        let (train, test) = pax_ml::normalize(&train, &test);
        let m = pax_ml::train::svm::train_svm_classifier(
            &train,
            &pax_ml::train::svm::SvmParams { epochs: 60, ..Default::default() },
            3,
        );
        let q =
            pax_ml::quant::QuantizedModel::from_linear_classifier("b", &m, QuantSpec::default());
        let c = BespokeCircuit::generate(&q);
        let c = c.with_netlist(pax_synth::opt::optimize(&c.netlist));
        (c, train, test)
    }

    #[test]
    fn grid_enumeration_dedupes_and_orders() {
        let (c, train, _) = setup();
        let a = analyze(&c.netlist, &c.model, &train);
        let grid = enumerate_grid(&a, &PruneConfig::default());
        assert!(grid.n_designs() >= grid.n_unique());
        assert!(grid.n_unique() >= 1);
        for combo in &grid.combos {
            assert!(combo.set < grid.sets.len());
            assert!((0.8..=0.99 + 1e-9).contains(&combo.tau_c));
        }
        // Larger τc prunes fewer gates: for a fixed φc, the set size is
        // monotone non-increasing in τc.
        let mut by_phi: std::collections::HashMap<i64, Vec<(f64, usize)>> = Default::default();
        for combo in &grid.combos {
            by_phi.entry(combo.phi_c).or_default().push((combo.tau_c, grid.sets[combo.set].len()));
        }
        for (_, mut v) in by_phi {
            v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for pair in v.windows(2) {
                assert!(pair[1].1 <= pair[0].1, "τc monotonicity violated");
            }
        }
    }

    #[test]
    fn evaluation_reduces_area_and_bounds_accuracy() {
        let (c, train, test) = setup();
        let lib = egt_pdk::egt_library();
        let tech = egt_pdk::TechParams::egt();
        let a = analyze(&c.netlist, &c.model, &train);
        let grid = enumerate_grid(&a, &PruneConfig::default());
        let evals = evaluate_grid(&c.netlist, &c.model, &test, &lib, &tech, &a, &grid);
        assert_eq!(evals.len(), grid.n_unique());
        let base_area = area::area_mm2(&c.netlist, &lib).unwrap();
        for e in &evals {
            assert!(e.area_mm2 <= base_area + 1e-9, "pruning may not add area");
            assert!((0.0..=1.0).contains(&e.accuracy));
        }
        // At least one non-trivial pruning should exist for a circuit of
        // this size.
        assert!(evals.iter().any(|e| e.n_pruned > 0));
    }

    #[test]
    fn pruned_netlists_stay_valid_and_smaller() {
        let (c, train, _) = setup();
        let a = analyze(&c.netlist, &c.model, &train);
        let grid = enumerate_grid(&a, &PruneConfig::default());
        let set = grid.sets.iter().max_by_key(|s| s.len()).expect("non-empty grid");
        let pruned = apply_set(&c.netlist, &a, set);
        pax_netlist::validate::assert_valid(&pruned);
        assert!(pruned.gate_count() <= c.netlist.gate_count());
        // Interface is preserved.
        assert_eq!(pruned.input_ports().len(), c.netlist.input_ports().len());
        assert_eq!(pruned.output_ports().len(), c.netlist.output_ports().len());
    }
}
