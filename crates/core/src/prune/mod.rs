//! Netlist pruning through full (τc, φc) search (paper §III-C).
//!
//! A gate is prunable when its output sits at one constant value most of
//! the time (**τ**, measured by simulating the *training* set) and when
//! it can only structurally influence low-significance bits of the class
//! score buses (**φ**). Replacing such gates with their dominant
//! constant and re-synthesizing (constant propagation + dead-cone sweep)
//! removes whole fanin cones at a bounded error: the error *rate* is
//! bounded by `1 − τc` and the score-level error *magnitude* by
//! `2^(φc+1)`.
//!
//! Classifier subtlety (paper §III-C): the final argmax "congests" all
//! paths into a few output bits and destroys the error/significance
//! correlation, so φ is computed against the **pre-argmax score buses**;
//! gates inside the argmax itself reach no observation point and get
//! `φ = −1` — prunable at any `φc`, their damage rate-bounded by τ.
//!
//! The search is exhaustive over `τc ∈ {80%, 81%, …, 99%}` and, per τc,
//! over the distinct φ values `Φτ` of the τ-qualified gates — exactly
//! the paper's acceleration of the full search ("Φτ enables us to
//! explore only the relevant φc values"). Identical pruned-gate sets
//! arising from different `(τc, φc)` pairs are evaluated once.

mod analysis;
mod overlay;
mod search;

pub use analysis::{analyze, analyze_compiled, PruneAnalysis};
pub(crate) use overlay::phase;
pub use overlay::{DeltaFoldStats, DeltaSession, OverlayContext, EVAL_PHASES};
pub(crate) use search::gate_set_hash;
pub use search::{
    apply_set, enumerate_grid, evaluate_grid, try_evaluate_grid, try_evaluate_set_rebuild,
    GridCombo, PruneEval, PruneGrid,
};

/// Configuration of the pruning exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneConfig {
    /// Lowest τc explored (paper: 0.80).
    pub tau_lo: f64,
    /// Highest τc explored (paper: 0.99).
    pub tau_hi: f64,
    /// Number of τc steps across `[tau_lo, tau_hi]` (paper: 1% steps →
    /// 20 values).
    pub tau_steps: usize,
}

impl Default for PruneConfig {
    fn default() -> Self {
        Self { tau_lo: 0.80, tau_hi: 0.99, tau_steps: 20 }
    }
}

impl PruneConfig {
    /// The τc values explored, ascending.
    pub fn tau_values(&self) -> Vec<f64> {
        assert!(self.tau_steps >= 1, "need at least one τc");
        assert!(
            (0.5..=1.0).contains(&self.tau_lo) && self.tau_lo <= self.tau_hi,
            "invalid τc range"
        );
        if self.tau_steps == 1 {
            return vec![self.tau_lo];
        }
        (0..self.tau_steps)
            .map(|i| {
                self.tau_lo + (self.tau_hi - self.tau_lo) * i as f64 / (self.tau_steps - 1) as f64
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_values_span_the_paper_range() {
        let v = PruneConfig::default().tau_values();
        assert_eq!(v.len(), 20);
        assert!((v[0] - 0.80).abs() < 1e-12);
        assert!((v[19] - 0.99).abs() < 1e-12);
        // ~1% steps.
        assert!((v[1] - v[0] - 0.01).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid τc range")]
    fn bad_range_rejected() {
        let _ = PruneConfig { tau_lo: 0.3, tau_hi: 0.99, tau_steps: 5 }.tau_values();
    }
}
