use pax_bespoke::stimulus_for;
use pax_ml::quant::QuantizedModel;
use pax_ml::Dataset;
use pax_netlist::{traverse, NetId, Netlist, Node};
use pax_sim::CompiledNetlist;

/// Per-net τ and φ metrics of one circuit, computed once and reused by
/// the whole (τc, φc) sweep.
#[derive(Debug, Clone)]
pub struct PruneAnalysis {
    /// Per-net `(τ, dominant value)` from the training-set simulation.
    pub tau: Vec<(f64, bool)>,
    /// Per-net φ: most significant reachable score bit, `−1` when no
    /// observation point is reachable.
    pub phi: Vec<i64>,
    /// Prunable gates (area-occupying gate nodes).
    pub candidates: Vec<NetId>,
}

impl PruneAnalysis {
    /// Dominant constant of a net.
    pub fn dominant(&self, net: NetId) -> bool {
        self.tau[net.index()].1
    }

    /// τ of a net.
    pub fn tau_of(&self, net: NetId) -> f64 {
        self.tau[net.index()].0
    }

    /// φ of a net.
    pub fn phi_of(&self, net: NetId) -> i64 {
        self.phi[net.index()]
    }
}

/// Runs the paper's pruning steps 1–3 prerequisites: simulate the
/// *training* dataset for per-gate constness (τ) and compute φ against
/// the score-bus observation points.
///
/// # Panics
///
/// Panics if the netlist lacks `score*` ports (it must come from
/// `pax-bespoke`) or the dataset does not match the model.
pub fn analyze(netlist: &Netlist, model: &QuantizedModel, train: &Dataset) -> PruneAnalysis {
    analyze_compiled(&CompiledNetlist::compile(netlist), netlist, model, train)
}

/// [`analyze`] over an already-compiled netlist. The framework compiles
/// each base circuit once and reuses the tape across the τ simulation
/// here and the accuracy/power measurement — pass the tape compiled
/// from `netlist` (the φ traversal still needs the netlist structure).
///
/// # Panics
///
/// See [`analyze`].
pub fn analyze_compiled(
    compiled: &CompiledNetlist,
    netlist: &Netlist,
    model: &QuantizedModel,
    train: &Dataset,
) -> PruneAnalysis {
    // τ from training-set switching activity (paper steps 1–2).
    let stim = stimulus_for(model, train);
    let sim = compiled.run_with_activity(&stim).unwrap_or_else(|e| panic!("{e}"));
    let tau: Vec<(f64, bool)> =
        (0..netlist.len()).map(|i| sim.activity.tau(NetId::from_index(i))).collect();

    // φ seeds: bit significance on every score-port bit (a net may feed
    // several score bits; the maximum significance wins).
    let mut seed = vec![-1i64; netlist.len()];
    let mut score_ports = 0;
    for port in netlist.output_ports() {
        if !port.name.starts_with("score") {
            continue;
        }
        score_ports += 1;
        for (bit, net) in port.bits.iter().enumerate() {
            seed[net.index()] = seed[net.index()].max(bit as i64);
        }
    }
    assert!(score_ports > 0, "netlist exposes no score ports for φ");
    let phi = traverse::max_backward(netlist, &seed);

    let candidates: Vec<NetId> = netlist
        .iter()
        .filter_map(|(id, node)| match node {
            Node::Gate(g) if !g.kind.is_free() => Some(id),
            _ => None,
        })
        .collect();

    PruneAnalysis { tau, phi, candidates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pax_bespoke::BespokeCircuit;
    use pax_ml::quant::QuantSpec;
    use pax_ml::synth_data::blobs;

    fn setup() -> (BespokeCircuit, Dataset) {
        let data = blobs("b", 240, 3, 3, 0.08, 31);
        let (train, _) = data.split(0.7, 1);
        let (train, test) = pax_ml::normalize(&train, &train.clone());
        let _ = test;
        let m = pax_ml::train::svm::train_svm_classifier(
            &train,
            &pax_ml::train::svm::SvmParams { epochs: 40, ..Default::default() },
            3,
        );
        let q =
            pax_ml::quant::QuantizedModel::from_linear_classifier("b", &m, QuantSpec::default());
        (BespokeCircuit::generate(&q), train)
    }

    #[test]
    fn analysis_covers_every_net() {
        let (c, train) = setup();
        let a = analyze(&c.netlist, &c.model, &train);
        assert_eq!(a.tau.len(), c.netlist.len());
        assert_eq!(a.phi.len(), c.netlist.len());
        assert!(!a.candidates.is_empty());
        for &(t, _) in &a.tau {
            assert!((0.5..=1.0).contains(&t), "τ={t}");
        }
    }

    #[test]
    fn score_bits_have_their_own_significance() {
        let (c, train) = setup();
        let a = analyze(&c.netlist, &c.model, &train);
        let port = c.netlist.output_port("score0").unwrap();
        for (bit, net) in port.bits.iter().enumerate() {
            assert!(a.phi_of(*net) >= bit as i64, "bit {bit}");
        }
    }

    #[test]
    fn argmax_gates_get_phi_minus_one() {
        let (c, train) = setup();
        let a = analyze(&c.netlist, &c.model, &train);
        // The class port's driver gates live inside the argmax: they
        // cannot reach any score bus (those are upstream), so φ = −1.
        let class = c.netlist.output_port("class").unwrap();
        let mut saw_argmax_gate = false;
        for &net in &class.bits {
            if c.netlist.gate(net).is_some() {
                assert_eq!(a.phi_of(net), -1, "argmax gate {net}");
                saw_argmax_gate = true;
            }
        }
        assert!(saw_argmax_gate, "expected gate-driven class bits");
    }

    #[test]
    fn phi_grows_towards_significant_bits() {
        let (c, train) = setup();
        let a = analyze(&c.netlist, &c.model, &train);
        // Primary inputs influence everything, so their φ should be the
        // maximum significance of any score port.
        let max_phi = c
            .netlist
            .output_ports()
            .iter()
            .filter(|p| p.name.starts_with("score"))
            .map(|p| p.width() as i64 - 1)
            .max()
            .unwrap();
        let x0 = c.netlist.input_ports()[0].bits[0];
        assert_eq!(a.phi_of(x0), max_phi);
    }
}
