//! Overlay-based incremental candidate evaluation.
//!
//! The legacy pipeline rebuilds every pruning candidate from scratch:
//! `apply_set` re-synthesizes the netlist, `CompiledNetlist::compile`
//! builds a fresh tape, the full test set is re-quantized, re-packed
//! and re-simulated, and area/power/STA walk the new netlist. For the
//! paper's grid (thousands of `(τc, φc)` designs per circuit) that
//! per-candidate setup dominates the exploration wall-clock.
//!
//! [`OverlayContext`] amortizes everything that does not actually
//! depend on the candidate:
//!
//! * the **base tape** is compiled once and executed per candidate with
//!   a [prune mask](pax_sim::CompiledNetlist::run_masked) — pruned
//!   gates skip to their dominant constant via two reserved constant
//!   slots (or pure truth-table transforms where fusion collapsed the
//!   gate into a LUT cone), so downstream logic behaves exactly as if
//!   the netlist had been rebuilt. The functional run executes the
//!   *fused* tape; switching activity comes from an incremental delta
//!   over a recorded unfused [`BaseTrace`](pax_sim::BaseTrace) — only
//!   instructions in the pruned set's transitive fanout re-execute,
//!   and the result is bit-identical to a full tracked masked run;
//! * the **test stimulus** is quantized and bit-packed once
//!   ([`PackedStimulus`]);
//! * the candidate's **surviving structure** comes from the symbolic
//!   fold ([`FoldedCircuit`]) — node-for-node the netlist
//!   `apply_set` would have built, without building it — so the
//!   area/power walks add the very same cell figures in the very same
//!   order;
//! * switching activity maps from masked base slots onto surviving
//!   gates through the fold's [`Provenance`] (inversion preserves
//!   toggle counts exactly);
//! * timing is **re-timed incrementally**: only the affected cone (the
//!   pruned set's transitive fanout) is recomputed through
//!   [`pax_sta::DelayTable`]; every other gate reuses the base
//!   circuit's arrival time.
//!
//! The result is **bit-for-bit identical** to the rebuild pipeline on
//! all four measured axes (accuracy, area, power, delay) — pinned by
//! the differential property suite in
//! `crates/core/tests/proptest_overlay.rs` and by the golden cardio
//! svm-r design point. The rebuild pipeline itself stays in
//! `search.rs` as that suite's oracle.
//!
//! [`Provenance`]: pax_netlist::fold::Provenance

use std::borrow::Cow;
use std::sync::atomic::{AtomicU64, Ordering};

use egt_pdk::{Library, PdkError, TechParams};
use pax_bespoke::{score_outputs, stimulus_for};
use pax_ml::quant::QuantizedModel;
use pax_ml::Dataset;
use pax_netlist::fold::{FoldedCircuit, Refolder};
use pax_netlist::traverse::Fanout;
use pax_netlist::{GateKind, NetId, Netlist};
use pax_obs::Phases;
use pax_sim::power::PowerReport;
use pax_sim::{Activity, BaseTrace, CompiledNetlist, DeltaSim, PackedStimulus};
use pax_sta::DelayTable;

use super::{PruneAnalysis, PruneEval};
use crate::error::StudyError;

/// The phases one candidate evaluation splits into, in reporting
/// order. `resolve` (genome → gate set) is accounted by the
/// [`Evaluator`](crate::explore::Evaluator); the remaining four are
/// accounted here per [`OverlayContext::evaluate`] call. The timers are
/// relaxed atomics around unchanged code paths, so instrumentation
/// cannot perturb any measured value — the overlay-vs-rebuild
/// differential suite pins that.
pub const EVAL_PHASES: &[&str] = &["resolve", "fold", "masked-sim", "score", "re-time"];

/// [`EVAL_PHASES`] indices, kept adjacent to the list they index.
pub(crate) mod phase {
    /// Genome → sorted gate set (evaluator-side).
    pub const RESOLVE: usize = 0;
    /// Symbolic fold of the surviving structure.
    pub const FOLD: usize = 1;
    /// Masked execution of the shared tape.
    pub const MASKED_SIM: usize = 2;
    /// Output scoring against the golden model.
    pub const SCORE: usize = 3;
    /// Affected-cone walk: area/power sums + incremental re-timing.
    pub const RE_TIME: usize = 4;
}

/// Copied per-kind area/power cell figures (delay lives in
/// [`DelayTable`]). Copies of the library's `f64`s produce the same
/// sums as fresh `require` lookups, so caching them is observationally
/// free.
#[derive(Debug, Clone, Copy)]
struct CellFigures {
    area_mm2: f64,
    static_uw: f64,
    sw_energy_nj: f64,
}

/// Per-kind cell figures resolved once per base circuit. Missing cells
/// surface as [`PdkError::UnknownCell`] only when a candidate actually
/// uses the kind — the same contract as `Library::require`.
#[derive(Debug, Clone)]
struct CellTable {
    cells: [Option<CellFigures>; GateKind::COUNT],
}

impl CellTable {
    fn new(lib: &Library) -> Self {
        let mut cells = [None; GateKind::COUNT];
        for &kind in GateKind::all() {
            if kind.is_free() {
                continue;
            }
            cells[kind as usize] = lib.cell(kind.mnemonic()).map(|c| CellFigures {
                area_mm2: c.area_mm2,
                static_uw: c.static_uw,
                sw_energy_nj: c.sw_energy_nj,
            });
        }
        Self { cells }
    }

    fn require(&self, kind: GateKind) -> Result<CellFigures, PdkError> {
        self.cells[kind as usize].ok_or_else(|| PdkError::UnknownCell(kind.mnemonic().to_owned()))
    }
}

/// Everything candidate evaluation shares across one base circuit:
/// the compiled tape, the packed test stimulus, resolved cell figures,
/// the base timing profile and the fanout table the affected-cone
/// analysis walks. Build once per `(base circuit, test set)` pair; then
/// [`evaluate`](Self::evaluate) any number of pruned-gate sets without
/// re-synthesis or recompilation.
#[derive(Debug)]
pub struct OverlayContext<'a> {
    /// The base circuit — borrowed for caller-provided contexts
    /// ([`OverlayContext::new`]), owned for lazily materialized
    /// coefficient-level contexts ([`OverlayContext::new_owned`]) and
    /// for fabric-shipped contexts ([`OverlayContext::new_static`]).
    base: Cow<'a, Netlist>,
    model: Cow<'a, QuantizedModel>,
    test: Cow<'a, Dataset>,
    tech: Cow<'a, TechParams>,
    tape: CompiledNetlist,
    packed: PackedStimulus,
    /// One recorded unfused run of the base tape on the packed test
    /// set: per-word slot values plus base activity. Masked activity is
    /// re-derived from it incrementally instead of re-executing the
    /// whole tracked tape per candidate.
    trace: BaseTrace,
    cells: CellTable,
    delays: DelayTable,
    /// Base-circuit arrival times (`pax_sta` on the unpruned netlist) —
    /// reused verbatim outside the affected cone.
    base_arrival: Vec<f64>,
    fanout: Fanout,
    /// Per-phase wall-time accounting across every `evaluate` call on
    /// this context (lock-free; workers record concurrently).
    phases: Phases,
    /// Folds that resumed a cached parent replay
    /// ([`evaluate_with_session`](Self::evaluate_with_session) hits).
    delta_folds: AtomicU64,
    /// Folds that ran from scratch (fresh sessions, profitability
    /// fallbacks, and every plain [`evaluate`](Self::evaluate) call).
    full_folds: AtomicU64,
    /// Total substitution-delta nets across the delta folds (mean delta
    /// size = `delta_nets / delta_folds`).
    delta_nets: AtomicU64,
}

/// Cumulative delta-evaluation counters of one [`OverlayContext`],
/// for telemetry reporting. Unlike phase call counts, the delta/full
/// split depends on how candidates were chunked across workers, so
/// these never participate in determinism comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaFoldStats {
    /// Evaluations that reused a cached parent fold.
    pub delta_folds: u64,
    /// Evaluations folded from scratch.
    pub full_folds: u64,
    /// Total symmetric-difference nets across the delta evaluations.
    pub delta_nets: u64,
}

impl DeltaFoldStats {
    /// The counter growth since an earlier snapshot of the same
    /// counters (saturating, so a stale snapshot cannot underflow).
    #[must_use]
    pub fn since(&self, start: &DeltaFoldStats) -> DeltaFoldStats {
        DeltaFoldStats {
            delta_folds: self.delta_folds.saturating_sub(start.delta_folds),
            full_folds: self.full_folds.saturating_sub(start.full_folds),
            delta_nets: self.delta_nets.saturating_sub(start.delta_nets),
        }
    }

    /// Merges another context's counters into this one.
    pub fn merge(&mut self, other: &DeltaFoldStats) {
        self.delta_folds += other.delta_folds;
        self.full_folds += other.full_folds;
        self.delta_nets += other.delta_nets;
    }

    /// Delta folds as a share of all folds (`None` before any fold).
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.delta_folds + self.full_folds;
        (total > 0).then(|| self.delta_folds as f64 / total as f64)
    }

    /// Mean substitution-delta size across the delta folds.
    pub fn mean_delta(&self) -> Option<f64> {
        (self.delta_folds > 0).then(|| self.delta_nets as f64 / self.delta_folds as f64)
    }
}

/// One worker's rolling delta-evaluation state against a single
/// [`OverlayContext`]: a rewindable fold replay ([`Refolder`]) plus a
/// rolling masked simulation ([`DeltaSim`]), both keyed to the last
/// evaluated mask. Create via [`OverlayContext::delta_session`], feed
/// to [`OverlayContext::evaluate_with_session`]; results are
/// bit-identical to [`OverlayContext::evaluate`] regardless of the
/// session's history.
#[derive(Debug)]
pub struct DeltaSession {
    refolder: Refolder,
    sim: DeltaSim,
    /// The mask of the last evaluation (id-sorted), for sizing the
    /// delta before committing to a rewind.
    last_mask: Vec<(NetId, bool)>,
}

impl<'a> OverlayContext<'a> {
    /// Compiles the shared tape, packs the test stimulus and profiles
    /// the base circuit's timing.
    ///
    /// # Errors
    ///
    /// Returns [`StudyError::Sim`] when the stimulus cannot be packed
    /// against the base circuit's ports and [`StudyError::Library`]
    /// when the library does not cover the base circuit's cells.
    ///
    /// # Panics
    ///
    /// Panics if the dataset's feature count differs from the model's
    /// (a caller bug, exactly like the rebuild path).
    pub fn new(
        base: &'a Netlist,
        model: &'a QuantizedModel,
        test: &'a Dataset,
        lib: &'a Library,
        tech: &'a TechParams,
    ) -> Result<Self, StudyError> {
        Self::from_parts(
            Cow::Borrowed(base),
            Cow::Borrowed(model),
            Cow::Borrowed(test),
            lib,
            Cow::Borrowed(tech),
        )
    }

    /// [`OverlayContext::new`] over an owned base circuit and model —
    /// the form lazily materialized coefficient-level contexts use,
    /// where the netlist is synthesized inside the evaluator and has no
    /// external owner to borrow from. Evaluation is bit-identical to
    /// the borrowed form.
    pub fn new_owned(
        base: Netlist,
        model: QuantizedModel,
        test: &'a Dataset,
        lib: &'a Library,
        tech: &'a TechParams,
    ) -> Result<Self, StudyError> {
        Self::from_parts(
            Cow::Owned(base),
            Cow::Owned(model),
            Cow::Borrowed(test),
            lib,
            Cow::Borrowed(tech),
        )
    }

    /// A fully-owned context that borrows nothing: the form evaluation
    /// jobs ship to an external worker pool
    /// ([`EvalFabric`](crate::explore::EvalFabric)), whose long-lived
    /// threads cannot borrow from the submitting study's stack. The
    /// library is consumed into the context's cell/delay tables (as in
    /// every other constructor), so only the netlist, model, test set
    /// and tech point need owning. Evaluation is bit-identical to the
    /// borrowed forms — construction runs the very same code path.
    pub fn new_static(
        base: Netlist,
        model: QuantizedModel,
        test: Dataset,
        lib: &Library,
        tech: TechParams,
    ) -> Result<OverlayContext<'static>, StudyError> {
        OverlayContext::from_parts(
            Cow::Owned(base),
            Cow::Owned(model),
            Cow::Owned(test),
            lib,
            Cow::Owned(tech),
        )
    }

    fn from_parts(
        base: Cow<'a, Netlist>,
        model: Cow<'a, QuantizedModel>,
        test: Cow<'a, Dataset>,
        lib: &Library,
        tech: Cow<'a, TechParams>,
    ) -> Result<Self, StudyError> {
        // Single-threaded tape by default: evaluation runs inside an
        // already-saturated worker pool, so nested word-parallelism
        // would only oversubscribe the cores.
        let tape = CompiledNetlist::compile(&base).with_threads(1);
        let packed = tape.pack(&stimulus_for(&model, &test))?;
        let trace = tape.trace(&packed);
        let base_arrival = pax_sta::analyze(&base, lib, &tech)?.arrival_ms;
        let fanout = Fanout::build(&base);
        Ok(Self {
            base,
            model,
            test,
            tech,
            tape,
            packed,
            trace,
            cells: CellTable::new(lib),
            delays: DelayTable::new(lib),
            base_arrival,
            fanout,
            phases: Phases::new(EVAL_PHASES),
            delta_folds: AtomicU64::new(0),
            full_folds: AtomicU64::new(0),
            delta_nets: AtomicU64::new(0),
        })
    }

    /// Re-pins the shared tape's worker-thread count (`0` = automatic).
    /// Results are bit-identical regardless — the thread-invariance
    /// property tests run the same candidates at several counts.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.tape = self.tape.with_threads(threads);
        self
    }

    /// The base netlist this context evaluates prunings of.
    pub fn base(&self) -> &Netlist {
        &self.base
    }

    /// The per-phase timing accumulators this context has gathered
    /// ([`EVAL_PHASES`] order; the `resolve` slot stays zero here).
    pub fn phases(&self) -> &Phases {
        &self.phases
    }

    /// Evaluates one pruned-gate set as an overlay on the shared tape:
    /// masked simulation for accuracy and switching activity, symbolic
    /// fold for the surviving structure, incremental re-timing for the
    /// critical path. Bit-identical to the rebuild pipeline
    /// (`try_evaluate_set_rebuild`) on every [`PruneEval`] field.
    ///
    /// # Errors
    ///
    /// Returns [`StudyError::Library`] when the library lacks a cell a
    /// surviving gate needs — the same condition the rebuild path
    /// reports.
    pub fn evaluate(
        &self,
        analysis: &PruneAnalysis,
        set: &[NetId],
    ) -> Result<PruneEval, StudyError> {
        // `set` is sorted, so the (net, dominant) pairs are too.
        let mask: Vec<(NetId, bool)> = set.iter().map(|&g| (g, analysis.dominant(g))).collect();
        let affected = self.affected_cone(set);

        // Masked execution of the shared tape: the pruned gates' slots
        // stream their dominant constants, everything downstream reacts
        // exactly as the rebuilt netlist would. Functional outputs run
        // the fused tape; exact switching activity is re-derived from
        // the base trace by re-executing only the affected cone.
        let (sim, activity) = self.phases.time(phase::MASKED_SIM, || {
            let sim = self.tape.run_masked(&self.packed, &mask);
            let activity = self.tape.masked_activity(&self.trace, &mask, &affected);
            (sim, activity)
        });
        let (accuracy, _) =
            self.phases.time(phase::SCORE, || score_outputs(&self.model, &self.test, &sim));

        // The surviving structure — node-for-node what `apply_set`
        // would rebuild.
        let folded =
            self.phases.time(phase::FOLD, || FoldedCircuit::apply_sorted(&self.base, &mask));
        self.full_folds.fetch_add(1, Ordering::Relaxed);

        self.survivor_walk(set.len(), &affected, accuracy, &activity, &folded)
    }

    /// [`evaluate`](Self::evaluate) through a rolling [`DeltaSession`]:
    /// the fold resumes the session's cached replay from the first
    /// divergent substitution and the masked simulation re-executes
    /// only the slots downstream of the mask's symmetric difference.
    /// Results are bit-identical to [`evaluate`](Self::evaluate) — and
    /// therefore to the rebuild pipeline — on every [`PruneEval`]
    /// field, regardless of what the session evaluated before (pinned
    /// by the session-chain differential tests).
    ///
    /// When the symmetric difference exceeds `|set| + 2` a rewound
    /// replay would re-do more work than a fresh fold, so the refolder
    /// falls back to folding from scratch (the rolling simulation's
    /// worst case already matches the full masked pass and keeps its
    /// state either way).
    ///
    /// # Errors
    ///
    /// Returns [`StudyError::Library`] when the library lacks a cell a
    /// surviving gate needs — the same condition
    /// [`evaluate`](Self::evaluate) reports.
    pub fn evaluate_with_session(
        &self,
        analysis: &PruneAnalysis,
        set: &[NetId],
        session: &mut DeltaSession,
    ) -> Result<PruneEval, StudyError> {
        // `set` is sorted, so the (net, dominant) pairs are too.
        let mask: Vec<(NetId, bool)> = set.iter().map(|&g| (g, analysis.dominant(g))).collect();
        let symdiff = symdiff_len(&session.last_mask, &mask);
        if symdiff > set.len() + 2 {
            session.refolder.reset();
        }
        let affected = self.affected_cone(set);

        let (sim, activity) =
            self.phases.time(phase::MASKED_SIM, || session.sim.step(&self.tape, &mask));
        let (accuracy, _) =
            self.phases.time(phase::SCORE, || score_outputs(&self.model, &self.test, &sim));

        let folded = self.phases.time(phase::FOLD, || session.refolder.refold(&self.base, &mask));
        if session.refolder.last_resume().is_some() {
            self.delta_folds.fetch_add(1, Ordering::Relaxed);
            self.delta_nets.fetch_add(symdiff as u64, Ordering::Relaxed);
        } else {
            self.full_folds.fetch_add(1, Ordering::Relaxed);
        }
        session.last_mask = mask;

        self.survivor_walk(set.len(), &affected, accuracy, &activity, &folded)
    }

    /// Snapshots the cumulative delta/full fold counters.
    pub fn delta_stats(&self) -> DeltaFoldStats {
        DeltaFoldStats {
            delta_folds: self.delta_folds.load(Ordering::Relaxed),
            full_folds: self.full_folds.load(Ordering::Relaxed),
            delta_nets: self.delta_nets.load(Ordering::Relaxed),
        }
    }

    /// Creates a fresh rolling evaluation session against this context
    /// (one per worker thread; sessions are not `Sync`).
    pub fn delta_session(&self) -> DeltaSession {
        DeltaSession {
            refolder: Refolder::new(),
            sim: DeltaSim::new(&self.tape, &self.trace),
            last_mask: Vec::new(),
        }
    }

    /// Affected cone: the pruned set's transitive fanout in the base
    /// circuit. Gates outside it hold values word-for-word identical
    /// to the base run (the activity delta merges their counts) and
    /// are isomorphic images of their base counterparts (re-timing
    /// reuses their base arrival times verbatim).
    fn affected_cone(&self, set: &[NetId]) -> Vec<bool> {
        let mut affected = vec![false; self.base.len()];
        let mut stack: Vec<NetId> = set.to_vec();
        while let Some(n) = stack.pop() {
            if std::mem::replace(&mut affected[n.index()], true) {
                continue;
            }
            for &t in self.fanout.of(n) {
                if !affected[t.index()] {
                    stack.push(t);
                }
            }
        }
        affected
    }

    /// One walk over the fold's survivors in construction order: area
    /// and power sums plus incremental re-timing, assembled into the
    /// final [`PruneEval`]. Shared verbatim between the fresh and the
    /// session paths so both produce the same f64 summation sequence —
    /// the same order as the rebuild path's separate area/power/STA
    /// walks.
    fn survivor_walk(
        &self,
        n_pruned: usize,
        affected: &[bool],
        accuracy: f64,
        activity: &Activity,
        folded: &FoldedCircuit,
    ) -> Result<PruneEval, StudyError> {
        let retime_start = std::time::Instant::now();
        let f_hz = self.tech.clock_hz();
        let mut area_mm2 = 0.0;
        let mut static_uw = 0.0;
        let mut dynamic_uw = 0.0;
        let mut arrival = vec![0.0f64; folded.len()];
        for (i, node) in folded.nodes().iter().enumerate() {
            let Some((kind, ins)) = node.gate() else { continue };
            if kind.is_free() {
                continue; // constants: no area, no power, no delay
            }
            let cell = self.cells.require(kind)?;
            area_mm2 += cell.area_mm2;
            static_uw += cell.static_uw;
            let prov = folded.provenance(i).expect("non-constant folded nodes carry provenance");
            // Toggle counts survive inversion, so the masked base slot
            // stands in for the surviving gate's output exactly.
            dynamic_uw += cell.sw_energy_nj * activity.toggle_rate(prov.source) * f_hz * 1e-3;
            if !prov.inverted && !affected[prov.source.index()] {
                arrival[i] = self.base_arrival[prov.source.index()];
            } else {
                let delay = self.delays.delay_ms(kind)?;
                let mut worst = 0.0;
                for &inp in ins {
                    if arrival[inp as usize] >= worst {
                        worst = arrival[inp as usize];
                    }
                }
                arrival[i] = worst + delay;
            }
        }
        let mut critical_ms = 0.0;
        for &bit in folded.output_bits() {
            if arrival[bit as usize] >= critical_ms {
                critical_ms = arrival[bit as usize];
            }
        }
        // The survivor walk carries a `?`, so it times via an explicit
        // start rather than a closure.
        self.phases.add(
            phase::RE_TIME,
            u64::try_from(retime_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );

        let power = PowerReport {
            static_mw: static_uw * 1e-3,
            dynamic_mw: dynamic_uw * 1e-3,
            io_floor_mw: self.tech.io_floor_mw,
        };
        Ok(PruneEval {
            area_mm2,
            power_mw: power.total_mw(),
            accuracy,
            gate_count: folded.gate_count(),
            critical_ms,
            n_pruned,
        })
    }
}

/// The number of `(net, value)` substitutions present in exactly one
/// of two id-sorted masks (a net re-valued on both sides counts once) —
/// the same measure [`DeltaSim`] reports as its delta size.
fn symdiff_len(old: &[(NetId, bool)], new: &[(NetId, bool)]) -> usize {
    let (mut i, mut j, mut n) = (0, 0, 0);
    while i < old.len() && j < new.len() {
        match old[i].0.cmp(&new[j].0) {
            std::cmp::Ordering::Less => {
                n += 1;
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                n += 1;
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                n += usize::from(old[i].1 != new[j].1);
                i += 1;
                j += 1;
            }
        }
    }
    n + (old.len() - i) + (new.len() - j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::{analyze, enumerate_grid, try_evaluate_set_rebuild, PruneConfig};
    use pax_bespoke::BespokeCircuit;
    use pax_ml::quant::QuantSpec;
    use pax_ml::synth_data::blobs;

    fn setup() -> (BespokeCircuit, Dataset, Dataset) {
        let data = blobs("ov", 280, 3, 3, 0.09, 53);
        let (train, test) = data.split(0.7, 1);
        let (train, test) = pax_ml::normalize(&train, &test);
        let m = pax_ml::train::svm::train_svm_classifier(
            &train,
            &pax_ml::train::svm::SvmParams { epochs: 50, ..Default::default() },
            3,
        );
        let q =
            pax_ml::quant::QuantizedModel::from_linear_classifier("ov", &m, QuantSpec::default());
        let c = BespokeCircuit::generate(&q);
        let c = c.with_netlist(pax_synth::opt::optimize(&c.netlist));
        (c, train, test)
    }

    #[test]
    fn overlay_is_bit_identical_to_rebuild_across_the_grid() {
        let (c, train, test) = setup();
        let lib = egt_pdk::egt_library();
        let tech = egt_pdk::TechParams::egt();
        let a = analyze(&c.netlist, &c.model, &train);
        let grid = enumerate_grid(&a, &PruneConfig::default());
        let ctx = OverlayContext::new(&c.netlist, &c.model, &test, &lib, &tech).unwrap();
        for set in &grid.sets {
            let overlay = ctx.evaluate(&a, set).unwrap();
            let rebuild =
                try_evaluate_set_rebuild(&c.netlist, &c.model, &test, &lib, &tech, &a, set)
                    .unwrap();
            assert_eq!(
                overlay.accuracy.to_bits(),
                rebuild.accuracy.to_bits(),
                "accuracy diverged on |set| = {}",
                set.len()
            );
            assert_eq!(overlay.area_mm2.to_bits(), rebuild.area_mm2.to_bits(), "area");
            assert_eq!(overlay.power_mw.to_bits(), rebuild.power_mw.to_bits(), "power");
            assert_eq!(overlay.critical_ms.to_bits(), rebuild.critical_ms.to_bits(), "delay");
            assert_eq!(overlay.gate_count, rebuild.gate_count, "gate count");
            assert_eq!(overlay.n_pruned, rebuild.n_pruned);
        }
        assert!(!grid.sets.is_empty());
    }

    #[test]
    fn session_chain_is_bit_identical_to_fresh_evaluate() {
        let (c, train, test) = setup();
        let lib = egt_pdk::egt_library();
        let tech = egt_pdk::TechParams::egt();
        let a = analyze(&c.netlist, &c.model, &train);
        let grid = enumerate_grid(&a, &PruneConfig::default());
        let ctx = OverlayContext::new(&c.netlist, &c.model, &test, &lib, &tech).unwrap();
        let mut session = ctx.delta_session();
        // Forward then reverse: the forward leg resumes neighbouring
        // sets with small deltas, the reverse leg jumps between mostly
        // disjoint sets and exercises the profitability fallback.
        for set in grid.sets.iter().chain(grid.sets.iter().rev()) {
            let fresh = ctx.evaluate(&a, set).unwrap();
            let delta = ctx.evaluate_with_session(&a, set, &mut session).unwrap();
            assert_eq!(
                delta.accuracy.to_bits(),
                fresh.accuracy.to_bits(),
                "accuracy diverged on |set| = {}",
                set.len()
            );
            assert_eq!(delta.area_mm2.to_bits(), fresh.area_mm2.to_bits(), "area");
            assert_eq!(delta.power_mw.to_bits(), fresh.power_mw.to_bits(), "power");
            assert_eq!(delta.critical_ms.to_bits(), fresh.critical_ms.to_bits(), "delay");
            assert_eq!(delta.gate_count, fresh.gate_count, "gate count");
            assert_eq!(delta.n_pruned, fresh.n_pruned);
        }
        let stats = ctx.delta_stats();
        assert!(stats.delta_folds > 0, "the chain should resume at least one fold");
        assert_eq!(
            stats.delta_folds + stats.full_folds,
            4 * grid.sets.len() as u64,
            "every fold (fresh oracle + session) lands in exactly one counter"
        );
        assert!(stats.hit_rate().unwrap() > 0.0);
        assert!(stats.mean_delta().unwrap() > 0.0);
    }

    #[test]
    fn missing_library_cells_error_instead_of_panicking() {
        let (c, train, test) = setup();
        let empty = Library::new("empty", 1.0);
        let tech = egt_pdk::TechParams::egt();
        let _a = analyze(&c.netlist, &c.model, &train);
        // The base timing profile already needs the library.
        let err = OverlayContext::new(&c.netlist, &c.model, &test, &empty, &tech)
            .expect_err("empty library cannot profile the base circuit");
        assert!(matches!(err, StudyError::Library(PdkError::UnknownCell(_))));
    }
}
