//! Bespoke-multiplier area cache — the paper's "step 1".
//!
//! For every candidate coefficient value the flow needs
//! `AREA(BM_w̃)`: the printed area of the bespoke multiplier computing
//! `x · w̃` for the relevant input width. The paper synthesizes each
//! candidate with Design Compiler (≤ 6 s on 12 licensed threads); here
//! each candidate is generated, optimized and measured in-process, and
//! memoized behind a read-write lock so parallel sweeps share the cache.

use std::collections::HashMap;

use egt_pdk::Library;
use parking_lot::RwLock;
use pax_netlist::NetlistBuilder;
use pax_synth::{area, bits, constmul, opt};

/// Thread-safe memoized `AREA(BM_w)` lookup.
#[derive(Debug)]
pub struct MultCache {
    lib: Library,
    map: RwLock<HashMap<(u32, i64), f64>>,
}

impl MultCache {
    /// Creates an empty cache over the given library.
    pub fn new(lib: Library) -> Self {
        Self { lib, map: RwLock::new(HashMap::new()) }
    }

    /// The library this cache measures against.
    pub fn library(&self) -> &Library {
        &self.lib
    }

    /// Area (mm²) of the bespoke multiplier for an unsigned `in_bits`
    /// input and constant `w`. Synthesizes and memoizes on first use.
    ///
    /// # Panics
    ///
    /// Panics if `in_bits` is 0 (no such operand exists).
    pub fn area(&self, in_bits: u32, w: i64) -> f64 {
        assert!(in_bits > 0, "zero-width multiplier operand");
        if let Some(&a) = self.map.read().get(&(in_bits, w)) {
            return a;
        }
        let a = synthesize_area(&self.lib, in_bits, w);
        self.map.write().insert((in_bits, w), a);
        a
    }

    /// Pre-computes the whole signed coefficient range for one input
    /// width in parallel. `coef_bits` of 8 fills `w ∈ [−128, 127]`.
    pub fn build_range(&self, in_bits: u32, coef_bits: u32) {
        let (lo, hi) = ((-(1i64 << (coef_bits - 1))), (1i64 << (coef_bits - 1)) - 1);
        let missing: Vec<i64> = {
            let map = self.map.read();
            (lo..=hi).filter(|&w| !map.contains_key(&(in_bits, w))).collect()
        };
        if missing.is_empty() {
            return;
        }
        let threads = std::thread::available_parallelism().map_or(4, |n| n.get()).min(16);
        let chunk = missing.len().div_ceil(threads);
        let results: Vec<(i64, f64)> = std::thread::scope(|s| {
            let handles: Vec<_> = missing
                .chunks(chunk)
                .map(|ws| {
                    let lib = &self.lib;
                    s.spawn(move || {
                        ws.iter()
                            .map(|&w| (w, synthesize_area(lib, in_bits, w)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("synthesis thread")).collect()
        });
        let mut map = self.map.write();
        for (w, a) in results {
            map.insert((in_bits, w), a);
        }
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Fig. 2's statistic: for every `w` in the signed `coef_bits`
    /// range, the relative area reduction (%) achieved by moving to the
    /// cheapest `w̃ ∈ [w−e, w+e]` (clipped at the range borders).
    /// Coefficients whose multiplier is already free reduce by 0%.
    pub fn reduction_stats(&self, in_bits: u32, coef_bits: u32, e: i64) -> Vec<f64> {
        self.build_range(in_bits, coef_bits);
        let (lo, hi) = ((-(1i64 << (coef_bits - 1))), (1i64 << (coef_bits - 1)) - 1);
        (lo..=hi)
            .map(|w| {
                let base = self.area(in_bits, w);
                if base <= 0.0 {
                    return 0.0;
                }
                let best = (w - e).max(lo)..=(w + e).min(hi);
                let min = best.map(|cand| self.area(in_bits, cand)).fold(f64::INFINITY, f64::min);
                (base - min) / base * 100.0
            })
            .collect()
    }
}

/// Generates, optimizes and measures one bespoke multiplier.
fn synthesize_area(lib: &Library, in_bits: u32, w: i64) -> f64 {
    let mut b = NetlistBuilder::new(format!("bm_{w}"));
    let x = b.input_port("x", in_bits as usize);
    let width = bits::product_width(in_bits as usize, w);
    let p = constmul::bespoke_mul(&mut b, &x, w, width);
    b.output_port("p", p);
    let nl = opt::optimize(&b.finish());
    area::area_mm2(&nl, lib).expect("EGT library covers the generated cells")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> MultCache {
        MultCache::new(egt_pdk::egt_library())
    }

    #[test]
    fn powers_of_two_are_free() {
        let c = cache();
        for w in [0i64, 1, 2, 4, 8, 16, 32, 64] {
            assert_eq!(c.area(4, w), 0.0, "w={w}");
        }
    }

    #[test]
    fn negative_and_dense_coefficients_cost_area() {
        let c = cache();
        assert!(c.area(4, -1) > 0.0);
        assert!(c.area(4, 0b101_0101) > c.area(4, 0b11)); // denser CSD
    }

    #[test]
    fn area_grows_with_input_width() {
        let c = cache();
        for w in [-77i64, 23, 99] {
            assert!(c.area(8, w) > c.area(4, w), "w={w}");
        }
    }

    #[test]
    fn build_range_fills_and_memoizes() {
        let c = cache();
        c.build_range(4, 6);
        assert_eq!(c.len(), 64);
        let before = c.area(4, -32);
        c.build_range(4, 6); // no-op
        assert_eq!(c.len(), 64);
        assert_eq!(c.area(4, -32), before);
    }

    #[test]
    fn reduction_stats_shape_matches_paper_fig2() {
        let c = cache();
        let r1 = c.reduction_stats(4, 6, 1);
        let r4 = c.reduction_stats(4, 6, 4);
        assert_eq!(r1.len(), 64);
        // Larger e can only help.
        for (a, b) in r1.iter().zip(&r4) {
            assert!(b >= a, "e=4 must dominate e=1");
        }
        // Reductions are percentages.
        assert!(r4.iter().all(|&v| (0.0..=100.0).contains(&v)));
        // Some coefficient reaches a free neighbour -> 100%.
        assert!(r4.contains(&100.0));
        // Free coefficients stay at 0%.
        assert!(r1.contains(&0.0));
        // Median reduction grows with e (the paper reports 19% -> 53%
        // from e=1 to e=4 across multiplier shapes).
        let median = |v: &[f64]| {
            let mut s = v.to_vec();
            s.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            s[s.len() / 2]
        };
        assert!(median(&r4) > median(&r1));
    }

    #[test]
    #[should_panic(expected = "zero-width")]
    fn zero_width_rejected() {
        let _ = cache().area(0, 3);
    }
}
