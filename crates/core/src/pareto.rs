//! Pareto-front extraction: the classic (accuracy ↑, area ↓) batch
//! filter, plus the N-dimensional generalization over an
//! [`ObjectiveSet`].

use crate::explore::ObjectiveSet;
use crate::DesignPoint;

/// Indices of the non-dominated points, sorted by ascending area.
///
/// Duplicate (accuracy, area) pairs keep their first occurrence.
///
/// # Examples
///
/// ```
/// use pax_core::{pareto, DesignPoint, Technique};
///
/// let p = |acc: f64, area: f64| DesignPoint {
///     technique: Technique::Cross,
///     tau_c: None,
///     phi_c: None,
///     coeff: None,
///     accuracy: acc,
///     area_mm2: area,
///     power_mw: 0.0,
///     gate_count: 0,
///     critical_ms: 0.0,
/// };
/// let points = vec![p(0.9, 100.0), p(0.85, 60.0), p(0.8, 80.0), p(0.95, 120.0)];
/// let front = pareto::pareto_front(&points);
/// // (0.8, 80) is dominated by (0.85, 60); the rest trade off.
/// assert_eq!(front, vec![1, 0, 3]);
/// ```
pub fn pareto_front(points: &[DesignPoint]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&a, &b| {
        points[a]
            .area_mm2
            .partial_cmp(&points[b].area_mm2)
            .expect("finite area")
            .then(points[b].accuracy.partial_cmp(&points[a].accuracy).expect("finite accuracy"))
            .then(a.cmp(&b))
    });
    let mut front = Vec::new();
    let mut best_acc = f64::NEG_INFINITY;
    for idx in order {
        if points[idx].accuracy > best_acc {
            best_acc = points[idx].accuracy;
            front.push(idx);
        }
    }
    front
}

/// Indices of the non-dominated points under an arbitrary
/// [`ObjectiveSet`], in input order.
///
/// The brute-force batch counterpart of
/// [`ParetoArchive`](crate::explore::ParetoArchive) for any
/// dimensionality: a point is kept iff no other point dominates it on
/// the enabled axes, and exact metric ties keep their first
/// occurrence. Unlike [`pareto_front`] (which sorts its 2-D result by
/// ascending area), indices come back in input order.
///
/// # Examples
///
/// ```
/// use pax_core::explore::ObjectiveSet;
/// use pax_core::{pareto, DesignPoint, Technique};
///
/// let p = |acc: f64, area: f64, power: f64| DesignPoint {
///     technique: Technique::Cross,
///     tau_c: None,
///     phi_c: None,
///     coeff: None,
///     accuracy: acc,
///     area_mm2: area,
///     power_mw: power,
///     gate_count: 0,
///     critical_ms: 0.0,
/// };
/// // Same accuracy and area; only the power axis separates them.
/// let points = vec![p(0.9, 100.0, 8.0), p(0.9, 100.0, 6.0)];
/// assert_eq!(pareto::pareto_front_with(&points, &ObjectiveSet::accuracy_area()), vec![0]);
/// assert_eq!(
///     pareto::pareto_front_with(&points, &ObjectiveSet::accuracy_area_power()),
///     vec![1]
/// );
/// ```
pub fn pareto_front_with(points: &[DesignPoint], objectives: &ObjectiveSet) -> Vec<usize> {
    let keys: Vec<Vec<f64>> = points.iter().map(|p| objectives.keys(p)).collect();
    (0..points.len())
        .filter(|&i| {
            !keys.iter().enumerate().any(|(j, kj)| {
                if j == i {
                    return false;
                }
                let weakly = kj.iter().zip(&keys[i]).all(|(a, b)| a <= b);
                // j beats i when it weakly dominates with a strict edge,
                // or ties exactly and came first.
                weakly && (kj != &keys[i] || j < i)
            })
        })
        .collect()
}

/// Among `points`, the minimum-area index whose accuracy is at least
/// `min_accuracy`; `None` if no point qualifies. This is the paper's
/// Table II selection (`min_accuracy = baseline − 1%`).
pub fn best_area_within(points: &[DesignPoint], min_accuracy: f64) -> Option<usize> {
    points
        .iter()
        .enumerate()
        .filter(|(_, p)| p.accuracy >= min_accuracy)
        .min_by(|(_, a), (_, b)| a.area_mm2.partial_cmp(&b.area_mm2).expect("finite area"))
        .map(|(i, _)| i)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Technique;

    fn p(acc: f64, area: f64) -> DesignPoint {
        DesignPoint {
            technique: Technique::Cross,
            tau_c: None,
            phi_c: None,
            coeff: None,
            accuracy: acc,
            area_mm2: area,
            power_mw: 0.0,
            gate_count: 0,
            critical_ms: 0.0,
        }
    }

    #[test]
    fn front_is_mutually_non_dominated() {
        let pts = vec![
            p(0.5, 10.0),
            p(0.6, 20.0),
            p(0.55, 30.0),
            p(0.9, 50.0),
            p(0.9, 45.0),
            p(0.2, 5.0),
        ];
        let front = pareto_front(&pts);
        for (i, &a) in front.iter().enumerate() {
            for (j, &b) in front.iter().enumerate() {
                if i != j {
                    assert!(!pts[a].dominates(&pts[b]), "{a} dominates {b}");
                }
            }
        }
        // Every excluded point is dominated by someone on the front.
        for i in 0..pts.len() {
            if !front.contains(&i) {
                assert!(front.iter().any(|&f| pts[f].dominates(&pts[i])), "point {i}");
            }
        }
    }

    #[test]
    fn front_is_area_sorted() {
        let pts = vec![p(0.3, 50.0), p(0.9, 100.0), p(0.5, 70.0)];
        let front = pareto_front(&pts);
        for w in front.windows(2) {
            assert!(pts[w[0]].area_mm2 <= pts[w[1]].area_mm2);
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert!(pareto_front(&[]).is_empty());
        assert_eq!(pareto_front(&[p(0.1, 1.0)]), vec![0]);
    }

    #[test]
    fn nd_front_agrees_with_2d_filter_on_the_default_set() {
        let pts = vec![
            p(0.5, 10.0),
            p(0.6, 20.0),
            p(0.55, 30.0),
            p(0.9, 50.0),
            p(0.9, 45.0),
            p(0.2, 5.0),
            p(0.5, 10.0), // exact duplicate: first occurrence wins
        ];
        let legacy: std::collections::BTreeSet<usize> = pareto_front(&pts).into_iter().collect();
        let nd: std::collections::BTreeSet<usize> =
            pareto_front_with(&pts, &ObjectiveSet::accuracy_area()).into_iter().collect();
        assert_eq!(nd, legacy);
        assert!(!nd.contains(&6), "duplicate keeps only index 0");
    }

    #[test]
    fn best_area_within_respects_threshold() {
        let pts = vec![p(0.95, 100.0), p(0.90, 60.0), p(0.80, 30.0)];
        assert_eq!(best_area_within(&pts, 0.89), Some(1));
        assert_eq!(best_area_within(&pts, 0.99), None);
        assert_eq!(best_area_within(&pts, 0.0), Some(2));
    }
}
