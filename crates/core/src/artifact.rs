//! Servable artifacts — the deployment unit of the cross-layer flow.
//!
//! A study evaluates hundreds of designs and throws the netlists away;
//! what deploys to a printed device (and what an inference service
//! loads) is one *selected* design. An [`Artifact`] bundles everything
//! that selection needs to be served and audited later:
//!
//! * the materialized, approximated **netlist** (the hardware);
//! * the **golden model** the netlist hardwires — for
//!   `CoeffApprox`/`Cross` points the coefficient-approximated model,
//!   so an integer re-evaluation reproduces the *unpruned* circuit
//!   exactly and any divergence observed at serving time is
//!   attributable to netlist pruning alone;
//! * the recorded [`DesignPoint`] metrics (accuracy, area, power,
//!   timing) the selection was made on.
//!
//! The text format composes the existing line formats —
//! `pax_ml::serialize` for the model, `pax_netlist::textio` for the
//! netlist — under one header, so artifacts stay human-diffable and
//! reload with full structural validation.

use std::path::Path;

use pax_ml::quant::QuantizedModel;
use pax_ml::Dataset;
use pax_netlist::Netlist;

use crate::{DesignPoint, Technique};

/// A self-contained servable design bundle.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// The golden (integer) model the netlist hardwires.
    pub model: QuantizedModel,
    /// The materialized approximate netlist.
    pub netlist: Netlist,
    /// The metrics recorded when the design was selected.
    pub point: DesignPoint,
}

impl Artifact {
    /// Model/dataset identifier (the registry key `pax-serve` uses).
    pub fn name(&self) -> &str {
        &self.model.name
    }

    /// Re-measures classification accuracy of the *netlist* on a
    /// normalized dataset — the check that a reloaded artifact still
    /// reproduces its recorded [`DesignPoint::accuracy`].
    pub fn measured_accuracy(&self, data: &Dataset) -> f64 {
        pax_bespoke::evaluate(&self.netlist, &self.model, data).accuracy
    }

    /// Serializes the artifact to the `pax-artifact v1` text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "pax-artifact v1");
        let _ = write!(
            out,
            "point {} {} {} {} {} {} {} {}",
            self.point.technique.label(),
            self.point.tau_c.map_or_else(|| "-".to_owned(), |v| format!("{v}")),
            self.point.phi_c.map_or_else(|| "-".to_owned(), |v| format!("{v}")),
            self.point.accuracy,
            self.point.area_mm2,
            self.point.power_mw,
            self.point.gate_count,
            self.point.critical_ms,
        );
        // The coefficient gene rides as an optional trailing token so
        // pre-gene artifacts (9-token point lines) keep parsing and
        // exact-base exports stay byte-identical to the old format.
        match self.point.coeff {
            Some(g) => {
                let _ = writeln!(out, " {g}");
            }
            None => out.push('\n'),
        }
        out.push_str("model\n");
        out.push_str(&pax_ml::serialize::to_text(&self.model));
        out.push_str("netlist\n");
        out.push_str(&pax_netlist::textio::to_text(&self.netlist));
        out.push_str("end\n");
        out
    }

    /// Parses an artifact from the text format, re-validating the
    /// embedded netlist's structural invariants.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for malformed input.
    pub fn from_text(text: &str) -> Result<Artifact, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty artifact")?;
        if header.trim() != "pax-artifact v1" {
            return Err(format!("unsupported artifact header `{header}`"));
        }

        let point_line = lines.next().ok_or("missing point line")?;
        let point = parse_point(point_line)?;

        if lines.next().map(str::trim) != Some("model") {
            return Err("expected `model` section".into());
        }
        let model_text = take_section(&mut lines)?;
        let model = pax_ml::serialize::from_text(&model_text)
            .map_err(|e| format!("embedded model: {e}"))?;

        if lines.next().map(str::trim) != Some("netlist") {
            return Err("expected `netlist` section".into());
        }
        let netlist_text = take_section(&mut lines)?;
        let netlist = pax_netlist::textio::from_text(&netlist_text)
            .map_err(|e| format!("embedded netlist: {e}"))?;

        match lines.find(|l| !l.trim().is_empty()) {
            Some(l) if l.trim() == "end" => {
                check_interface(&model, &netlist)?;
                Ok(Artifact { model, netlist, point })
            }
            _ => Err("missing artifact `end`".into()),
        }
    }

    /// Writes the artifact to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Loads an artifact from `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; format errors map to
    /// [`std::io::ErrorKind::InvalidData`].
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Artifact> {
        let text = std::fs::read_to_string(path)?;
        Self::from_text(&text).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

/// Cross-checks that the embedded netlist implements the embedded
/// model's interface — each section can be individually well-formed yet
/// mutually inconsistent in a corrupted or hand-assembled file, and the
/// serving layer constructs backends on the assumption they match.
fn check_interface(model: &QuantizedModel, netlist: &Netlist) -> Result<(), String> {
    if netlist.input_ports().len() != model.n_inputs() {
        return Err(format!(
            "netlist has {} input ports, model expects {}",
            netlist.input_ports().len(),
            model.n_inputs()
        ));
    }
    let out = if model.kind.is_classifier() { "class" } else { "score0" };
    if netlist.output_port(out).is_none() {
        return Err(format!("netlist lacks required output port `{out}`"));
    }
    Ok(())
}

/// Collects the lines of one embedded section up to and including its
/// own `end` terminator (both embedded formats are line-oriented and
/// end with a bare `end` line).
fn take_section<'a>(lines: &mut impl Iterator<Item = &'a str>) -> Result<String, String> {
    let mut out = String::new();
    for line in lines {
        out.push_str(line);
        out.push('\n');
        if line.trim() == "end" {
            return Ok(out);
        }
    }
    Err("truncated section (no `end`)".into())
}

fn parse_point(line: &str) -> Result<DesignPoint, String> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    // 9 tokens is the original format; a 10th optional token carries
    // the coefficient-approximation gene label.
    if !(toks.len() == 9 || toks.len() == 10) || toks[0] != "point" {
        return Err(format!("malformed point line `{line}`"));
    }
    let technique =
        Technique::from_label(toks[1]).ok_or_else(|| format!("unknown technique `{}`", toks[1]))?;
    let opt_f64 = |t: &str| -> Result<Option<f64>, String> {
        if t == "-" {
            Ok(None)
        } else {
            t.parse().map(Some).map_err(|_| format!("bad float `{t}`"))
        }
    };
    let opt_i64 = |t: &str| -> Result<Option<i64>, String> {
        if t == "-" {
            Ok(None)
        } else {
            t.parse().map(Some).map_err(|_| format!("bad int `{t}`"))
        }
    };
    let f = |t: &str| -> Result<f64, String> { t.parse().map_err(|_| format!("bad float `{t}`")) };
    let coeff = match toks.get(9) {
        None => None,
        Some(&"-") => None,
        Some(tok) => Some(
            crate::explore::CoeffGene::from_label(tok)
                .ok_or_else(|| format!("bad coeff gene `{tok}`"))?,
        ),
    };
    Ok(DesignPoint {
        technique,
        tau_c: opt_f64(toks[2])?,
        phi_c: opt_i64(toks[3])?,
        coeff,
        accuracy: f(toks[4])?,
        area_mm2: f(toks[5])?,
        power_mw: f(toks[6])?,
        gate_count: toks[7].parse().map_err(|_| format!("bad int `{}`", toks[7]))?,
        critical_ms: f(toks[8])?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::{Framework, FrameworkConfig};
    use pax_ml::quant::QuantSpec;
    use pax_ml::synth_data::blobs;
    use pax_ml::train::svm::{train_svm_classifier, SvmParams};

    fn exported() -> (Artifact, Dataset) {
        let data = blobs("art", 240, 3, 3, 0.08, 9);
        let (train, test) = data.split(0.7, 1);
        let (train, test) = pax_ml::normalize(&train, &test);
        let m = train_svm_classifier(&train, &SvmParams { epochs: 40, ..Default::default() }, 3);
        let q = QuantizedModel::from_linear_classifier("art", &m, QuantSpec::default());
        let fw = Framework::new(FrameworkConfig::default());
        let study = fw.run_study(&q, &train, &test);
        let point = study.best_within_loss(Technique::Cross, 0.02);
        (fw.export_artifact(&q, &train, &point), test)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let (art, _) = exported();
        let back = Artifact::from_text(&art.to_text()).expect("round trip");
        assert_eq!(back.model, art.model);
        assert_eq!(back.point, art.point);
        assert_eq!(back.netlist.gate_count(), art.netlist.gate_count());
        assert_eq!(back.netlist.len(), art.netlist.len());
        assert_eq!(back.name(), "art");
    }

    #[test]
    fn reloaded_artifact_reproduces_recorded_accuracy() {
        let (art, test) = exported();
        let back = Artifact::from_text(&art.to_text()).expect("round trip");
        let acc = back.measured_accuracy(&test);
        assert!(
            (acc - back.point.accuracy).abs() < 1e-12,
            "reloaded accuracy {acc} vs recorded {}",
            back.point.accuracy
        );
    }

    #[test]
    fn exported_model_is_the_hardware_golden_model() {
        // For a Cross point the exported model carries the approximated
        // weights, which generally differ from the input model's.
        let (art, _) = exported();
        assert_eq!(art.point.technique, Technique::Cross);
        // The netlist interface matches the model shape.
        assert_eq!(art.netlist.input_ports().len(), art.model.n_inputs());
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        let (art, _) = exported();
        let text = art.to_text();
        assert!(Artifact::from_text("").is_err());
        assert!(Artifact::from_text("bogus\n").is_err());
        assert!(Artifact::from_text(&text.replace("pax-artifact v1", "v2")).is_err());
        let truncated = &text[..text.len() - 5];
        assert!(Artifact::from_text(truncated).is_err(), "missing end must fail");
        assert!(Artifact::from_text(&text.replacen("point cross-layer", "point alien", 1)).is_err());
    }

    #[test]
    fn mismatched_model_netlist_interface_is_rejected() {
        // Both sections well-formed, but the netlist implements a
        // 2-input model while the embedded model expects 3 inputs.
        let (art, _) = exported();
        let svc = pax_ml::model::LinearClassifier::new(
            vec![vec![0.5, -0.5], vec![-0.5, 0.5]],
            vec![0.0, 0.0],
        );
        let other = QuantizedModel::from_linear_classifier("other", &svc, QuantSpec::default());
        let wrong = pax_bespoke::BespokeCircuit::generate(&other).netlist;
        let text = art.to_text();
        let idx = text.find("netlist\n").expect("netlist section");
        let spliced =
            format!("{}netlist\n{}end\n", &text[..idx], pax_netlist::textio::to_text(&wrong));
        let err = Artifact::from_text(&spliced).expect_err("interface mismatch must be rejected");
        assert!(err.contains("input ports"), "{err}");
    }

    #[test]
    fn save_and_load_via_filesystem() {
        let (art, _) = exported();
        let dir = std::env::temp_dir().join("pax-artifact-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("art.paxart");
        art.save(&path).unwrap();
        let back = Artifact::load(&path).unwrap();
        assert_eq!(back.model, art.model);
        std::fs::remove_file(&path).ok();
    }
}
