//! Property tests over the exploration engine's building blocks: the
//! incremental Pareto archive must always equal the batch front (in
//! every supported dimensionality), the N-D hypervolume must be
//! monotone under non-dominated insertion and invariant to insertion
//! order, and the grid strategy must enumerate exactly the legacy grid.
//!
//! Coordinates are small integers on purpose: duplicates and exact
//! metric ties occur constantly, and every hypervolume term is a
//! product/sum of small integers — exact in `f64` — so monotonicity and
//! order-invariance can be asserted bitwise.

use pax_core::explore::{
    Candidate, CoeffGene, ContextSpace, ExhaustiveGrid, Nsga2, Nsga2Config, Objective,
    ObjectiveSet, ParetoArchive, SearchSpace, SearchStrategy,
};
use pax_core::{pareto, DesignPoint, Technique};
use proptest::prelude::*;

fn point(acc: f64, area: f64) -> DesignPoint {
    point4((acc, area, 0.0, 0.0))
}

fn point4((acc, area, power, delay): (f64, f64, f64, f64)) -> DesignPoint {
    DesignPoint {
        technique: Technique::Cross,
        tau_c: None,
        phi_c: None,
        coeff: None,
        accuracy: acc,
        area_mm2: area,
        power_mw: power,
        gate_count: 0,
        critical_ms: delay,
    }
}

/// The first `dim` canonical axes: accuracy ↑, area ↓, power ↓, delay ↓.
fn objective_set(dim: usize) -> ObjectiveSet {
    ObjectiveSet::new(&Objective::ALL[..dim])
}

/// Integer-valued points from raw tuples (minimized axes offset by 1 so
/// they are strictly positive).
fn cloud(raw: &[(u32, u32, u32, u32)]) -> Vec<DesignPoint> {
    raw.iter()
        .map(|&(a, r, w, d)| {
            point4((f64::from(a), f64::from(r) + 1.0, f64::from(w) + 1.0, f64::from(d) + 1.0))
        })
        .collect()
}

/// A reference point strictly dominated by every generated point:
/// accuracy floor below 0, minimized-axis ceilings above the coordinate
/// range.
fn reference(dim: usize) -> Vec<f64> {
    let mut r = vec![-1.0];
    r.resize(dim, 20.0);
    r
}

/// Independent brute-force oracle: non-dominated indices over canonical
/// keys, first occurrence kept on exact ties.
fn brute_force_front(keys: &[Vec<f64>]) -> Vec<usize> {
    (0..keys.len())
        .filter(|&i| {
            !keys.iter().enumerate().any(|(j, kj)| {
                j != i && kj.iter().zip(&keys[i]).all(|(a, b)| a <= b) && (kj != &keys[i] || j < i)
            })
        })
        .collect()
}

/// Canonical key multiset of an archive's front, sorted for comparison.
fn sorted_front_keys(archive: &ParetoArchive, objectives: &ObjectiveSet) -> Vec<Vec<f64>> {
    let mut keys: Vec<Vec<f64>> = archive.front().iter().map(|p| objectives.keys(p)).collect();
    keys.sort_by(|a, b| a.partial_cmp(b).expect("finite keys"));
    keys
}

/// Deterministic Fisher–Yates permutation from a splitmix64 stream (the
/// vendored proptest has no shuffle strategy).
fn permute<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut out = items.to_vec();
    let mut next = move || {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    for i in (1..out.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        out.swap(i, j);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental insertion equals batch `pareto_front` on random
    /// point clouds — same (accuracy, area) values, same ascending-area
    /// order, regardless of insertion order or duplicates.
    #[test]
    fn archive_equals_batch_front(
        raw in proptest::collection::vec((0u32..100, 0u32..100), 1..60)
    ) {
        // Coarse integer-derived coordinates so duplicates and exact
        // metric ties actually occur.
        let pts: Vec<DesignPoint> = raw
            .iter()
            .map(|&(a, r)| point(f64::from(a) / 100.0, f64::from(r) + 1.0))
            .collect();
        let mut archive = ParetoArchive::new();
        for p in &pts {
            archive.insert(p.clone());
        }
        let batch: Vec<(f64, f64)> = pareto::pareto_front(&pts)
            .into_iter()
            .map(|i| (pts[i].accuracy, pts[i].area_mm2))
            .collect();
        let incr: Vec<(f64, f64)> =
            archive.front().iter().map(|p| (p.accuracy, p.area_mm2)).collect();
        prop_assert_eq!(incr, batch);
        prop_assert_eq!(archive.inserted(), pts.len());
    }

    /// The archive's front is mutually non-dominated and dominates
    /// every rejected point.
    #[test]
    fn archive_front_is_sound(
        raw in proptest::collection::vec((0u32..50, 0u32..50), 1..40)
    ) {
        let pts: Vec<DesignPoint> = raw
            .iter()
            .map(|&(a, r)| point(f64::from(a) / 50.0, f64::from(r) + 1.0))
            .collect();
        let mut archive = ParetoArchive::new();
        archive.extend(pts.iter().cloned());
        let front = archive.front();
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                prop_assert!(i == j || !a.dominates(b), "front self-dominates");
            }
        }
        for p in &pts {
            prop_assert!(
                front
                    .iter()
                    .any(|f| f.dominates(p)
                        || (f.accuracy == p.accuracy && f.area_mm2 == p.area_mm2)),
                "point ({}, {}) neither on the front nor dominated",
                p.accuracy,
                p.area_mm2
            );
        }
    }

    /// In every dimensionality, the archive's front equals the
    /// brute-force batch dominance filter — both the independent
    /// in-test oracle and the library's `pareto_front_with`.
    #[test]
    fn nd_archive_equals_brute_force_front(
        dim in 2usize..=4,
        raw in proptest::collection::vec((0u32..12, 0u32..12, 0u32..12, 0u32..12), 1..45)
    ) {
        let objectives = objective_set(dim);
        let pts = cloud(&raw);
        let mut archive = ParetoArchive::with_objectives(objectives.clone());
        archive.extend(pts.iter().cloned());
        prop_assert_eq!(archive.inserted(), pts.len());

        let keys: Vec<Vec<f64>> = pts.iter().map(|p| objectives.keys(p)).collect();
        let oracle = brute_force_front(&keys);
        let mut oracle_keys: Vec<Vec<f64>> = oracle.iter().map(|&i| keys[i].clone()).collect();
        oracle_keys.sort_by(|a, b| a.partial_cmp(b).expect("finite keys"));
        prop_assert_eq!(&sorted_front_keys(&archive, &objectives), &oracle_keys);

        let lib = pareto::pareto_front_with(&pts, &objectives);
        prop_assert_eq!(&lib, &oracle, "library batch filter must match the oracle");

        // And the front is mutually non-dominated.
        for (i, a) in archive.front().iter().enumerate() {
            for (j, b) in archive.front().iter().enumerate() {
                prop_assert!(i == j || !objectives.dominates(a, b), "front self-dominates");
            }
        }
    }

    /// Hypervolume is monotone under insertion: a point entering the
    /// front strictly grows it (every generated point strictly
    /// dominates the reference), a bounced point leaves it bit-for-bit
    /// unchanged. Integer coordinates make both assertions exact.
    #[test]
    fn nd_hypervolume_is_monotone_under_insertion(
        dim in 2usize..=4,
        raw in proptest::collection::vec((0u32..10, 0u32..10, 0u32..10, 0u32..10), 1..24)
    ) {
        let objectives = objective_set(dim);
        let r = reference(dim);
        let mut archive = ParetoArchive::with_objectives(objectives);
        let mut hv = archive.hypervolume(&r);
        prop_assert_eq!(hv, 0.0);
        for p in cloud(&raw) {
            let entered = archive.insert(p);
            let next = archive.hypervolume(&r);
            if entered {
                prop_assert!(next > hv, "non-dominated insert must grow the volume");
            } else {
                prop_assert_eq!(next, hv, "rejected insert must not move the volume");
            }
            hv = next;
        }
        prop_assert_eq!(archive.try_hypervolume(&r), Ok(hv));
    }

    /// The cached incremental hypervolume equals the cache-bypassing
    /// batch recompute bit-for-bit after every insert — on *irregular*
    /// float coordinates (divisions by 7 and 13), where per-term reuse
    /// would drift if the final value were assembled by anything other
    /// than the same forward re-sum the batch path performs. Queries
    /// interleave two reference points so the cache is repeatedly
    /// invalidated and rebuilt mid-stream.
    #[test]
    fn incremental_hypervolume_equals_batch_recompute(
        dim in 2usize..=4,
        raw in proptest::collection::vec((0u32..60, 0u32..60, 0u32..60, 0u32..60), 1..32)
    ) {
        let objectives = objective_set(dim);
        let r = reference(dim);
        let far: Vec<f64> = r.iter().map(|x| x * 3.0).collect();
        let mut archive = ParetoArchive::with_objectives(objectives);
        for (i, &(a, w, p, d)) in raw.iter().enumerate() {
            archive.insert(point4((
                f64::from(a) / 7.0,
                f64::from(w) / 13.0 + 1.0,
                f64::from(p) / 7.0 + 1.0,
                f64::from(d) / 13.0 + 1.0,
            )));
            let q = if i % 3 == 2 { &far } else { &r };
            prop_assert_eq!(
                archive.hypervolume(q).to_bits(),
                archive.batch_hypervolume(q).to_bits(),
                "cached hypervolume diverged from batch recompute after insert {}",
                i
            );
        }
        // A final cold query on each reference point still agrees.
        prop_assert_eq!(archive.hypervolume(&r).to_bits(), archive.batch_hypervolume(&r).to_bits());
        prop_assert_eq!(
            archive.hypervolume(&far).to_bits(),
            archive.batch_hypervolume(&far).to_bits()
        );
    }

    /// The final front (as a key multiset) and its hypervolume are
    /// invariant to insertion order — bitwise, because the N-D
    /// hypervolume sorts the front before slicing.
    #[test]
    fn nd_front_and_hypervolume_ignore_insertion_order(
        dim in 2usize..=4,
        raw in proptest::collection::vec((0u32..10, 0u32..10, 0u32..10, 0u32..10), 1..40),
        seed in proptest::prelude::any::<u64>()
    ) {
        let objectives = objective_set(dim);
        let r = reference(dim);
        let pts = cloud(&raw);
        let mut forward = ParetoArchive::with_objectives(objectives.clone());
        forward.extend(pts.iter().cloned());
        let mut shuffled = ParetoArchive::with_objectives(objectives.clone());
        shuffled.extend(permute(&pts, seed));
        prop_assert_eq!(
            sorted_front_keys(&forward, &objectives),
            sorted_front_keys(&shuffled, &objectives)
        );
        prop_assert_eq!(forward.hypervolume(&r), shuffled.hypervolume(&r));
    }

    /// A 4-D set masked down to (accuracy, area) behaves exactly like
    /// the native 2-D set: same front, same order, same hypervolume
    /// bits — the degenerate case that keeps old studies comparable.
    #[test]
    fn masked_4d_set_is_bit_identical_to_native_2d(
        raw in proptest::collection::vec((0u32..20, 0u32..20, 0u32..20, 0u32..20), 1..40)
    ) {
        let pts = cloud(&raw);
        let mut native = ParetoArchive::new();
        native.extend(pts.iter().cloned());
        let masked_set = ObjectiveSet::all().mask(&[true, true, false, false]);
        let mut masked = ParetoArchive::with_objectives(masked_set);
        masked.extend(pts.iter().cloned());
        let pairs = |a: &ParetoArchive| -> Vec<(f64, f64)> {
            a.front().iter().map(|p| (p.accuracy, p.area_mm2)).collect()
        };
        prop_assert_eq!(pairs(&native), pairs(&masked));
        let r = [0.0, 21.0];
        prop_assert_eq!(native.hypervolume(&r), masked.hypervolume(&r));
    }

    /// Cross-check of the two hypervolume code paths: with one axis
    /// held constant, the 3-D WFG volume is exactly the 2-D sweep
    /// volume times the constant axis's slab.
    #[test]
    fn wfg_reduces_to_the_2d_sweep_on_a_constant_axis(
        raw in proptest::collection::vec((0u32..15, 0u32..15), 1..40),
        power in 0u32..5,
        slab in 1u32..4
    ) {
        let pts: Vec<DesignPoint> = raw
            .iter()
            .map(|&(a, r)| point4((f64::from(a), f64::from(r) + 1.0, f64::from(power), 0.0)))
            .collect();
        let mut two = ParetoArchive::new();
        two.extend(pts.iter().cloned());
        let mut three = ParetoArchive::with_objectives(ObjectiveSet::accuracy_area_power());
        three.extend(pts.iter().cloned());
        let hv2 = two.hypervolume(&[-1.0, 16.0]);
        let hv3 = three.hypervolume(&[-1.0, 16.0, f64::from(power + slab)]);
        prop_assert_eq!(hv3, hv2 * f64::from(slab));
    }

    /// The grid strategy enumerates exactly the τ-qualified φ levels,
    /// in grid order, for arbitrary gate metric sets — and when no τc
    /// qualifies a single gate (all gate τs below the weakest step, a
    /// real outcome for saturated circuits), it emits exactly the one
    /// unpruned baseline point instead of silently dropping the
    /// context.
    #[test]
    fn grid_strategy_enumerates_qualified_phis(
        gates in proptest::collection::vec((40u32..100, -1i64..8), 0..30),
        steps in 1usize..8
    ) {
        let gates: Vec<(f64, i64)> =
            gates.iter().map(|&(t, p)| (f64::from(t) / 100.0, p)).collect();
        let tau_values: Vec<f64> =
            (0..steps).map(|i| 0.80 + 0.19 * i as f64 / steps.max(2) as f64).collect();
        let space = SearchSpace {
            tau_values: tau_values.clone(),
            contexts: vec![ContextSpace { gene: CoeffGene::exact(), gates: gates.clone() }],
        };
        let batch = ExhaustiveGrid::new().ask(&space);
        let mut expected: Vec<Candidate> = Vec::new();
        for &tau_c in &tau_values {
            let mut phis: Vec<i64> = gates
                .iter()
                .filter(|&&(t, _)| t >= tau_c - 1e-12)
                .map(|&(_, p)| p)
                .collect();
            phis.sort_unstable();
            phis.dedup();
            for phi_c in phis {
                expected.push(Candidate { coeff: CoeffGene::exact(), tau_c, phi_c });
            }
        }
        if expected.is_empty() {
            expected.push(Candidate {
                coeff: CoeffGene::exact(),
                tau_c: tau_values[0],
                phi_c: -1,
            });
        }
        prop_assert_eq!(batch, expected);
    }

    /// NSGA-II survives every degenerate space the issue tracker has
    /// seen in the wild, and then some: gate-free contexts (empty
    /// `distinct_taus()`, the old `clamp(0, -1)` panic), contexts whose
    /// gates all share one τ, empty τ grids, and several coefficient
    /// genes side by side. Every asked candidate must carry a gene that
    /// actually exists in the space.
    #[test]
    fn nsga2_survives_degenerate_spaces(
        ctxs in proptest::collection::vec(
            proptest::collection::vec((0u32..100, -1i64..8), 0..6),
            1..4
        ),
        steps in 0usize..4,
        seed in proptest::prelude::any::<u64>()
    ) {
        let contexts: Vec<ContextSpace> = ctxs
            .iter()
            .enumerate()
            .map(|(i, gates)| ContextSpace {
                gene: if i == 0 {
                    CoeffGene::exact()
                } else {
                    CoeffGene::uniform(u8::try_from(i).expect("tiny index"))
                },
                gates: gates.iter().map(|&(t, p)| (f64::from(t) / 100.0, p)).collect(),
            })
            .collect();
        let tau_values: Vec<f64> = (0..steps).map(|i| 0.80 + 0.05 * i as f64).collect();
        let space = SearchSpace { tau_values, contexts };
        let mut nsga = Nsga2::new(Nsga2Config {
            population: 8,
            generations: 4,
            max_evals: 64,
            seed,
            ..Default::default()
        });
        let objectives = ObjectiveSet::all();
        for _ in 0..4 {
            let batch = nsga.ask(&space);
            if batch.is_empty() {
                break;
            }
            let mut results = Vec::with_capacity(batch.len());
            for (i, c) in batch.iter().enumerate() {
                prop_assert!(
                    space.contexts.iter().any(|ctx| ctx.gene == c.coeff),
                    "asked candidate carries a gene outside the space: {:?}",
                    c
                );
                prop_assert!(c.tau_c.is_finite());
                // Synthetic but deterministic feedback: selection
                // pressure is irrelevant here, only survival is.
                results.push((*c, point(((i * 37) % 100) as f64 / 100.0, (i % 7 + 1) as f64)));
            }
            nsga.tell(&results, &objectives);
        }
    }
}
