//! Property tests over the exploration engine's building blocks: the
//! incremental Pareto archive must always equal the batch front, and
//! the grid strategy must enumerate exactly the legacy grid.

use pax_core::explore::{Candidate, ContextSpace, ExhaustiveGrid, ParetoArchive, SearchStrategy};
use pax_core::{pareto, DesignPoint, Technique};
use proptest::prelude::*;

fn point(acc: f64, area: f64) -> DesignPoint {
    DesignPoint {
        technique: Technique::Cross,
        tau_c: None,
        phi_c: None,
        accuracy: acc,
        area_mm2: area,
        power_mw: 0.0,
        gate_count: 0,
        critical_ms: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental insertion equals batch `pareto_front` on random
    /// point clouds — same (accuracy, area) values, same ascending-area
    /// order, regardless of insertion order or duplicates.
    #[test]
    fn archive_equals_batch_front(
        raw in proptest::collection::vec((0u32..100, 0u32..100), 1..60)
    ) {
        // Coarse integer-derived coordinates so duplicates and exact
        // metric ties actually occur.
        let pts: Vec<DesignPoint> = raw
            .iter()
            .map(|&(a, r)| point(f64::from(a) / 100.0, f64::from(r) + 1.0))
            .collect();
        let mut archive = ParetoArchive::new();
        for p in &pts {
            archive.insert(p.clone());
        }
        let batch: Vec<(f64, f64)> = pareto::pareto_front(&pts)
            .into_iter()
            .map(|i| (pts[i].accuracy, pts[i].area_mm2))
            .collect();
        let incr: Vec<(f64, f64)> =
            archive.front().iter().map(|p| (p.accuracy, p.area_mm2)).collect();
        prop_assert_eq!(incr, batch);
        prop_assert_eq!(archive.inserted(), pts.len());
    }

    /// The archive's front is mutually non-dominated and dominates
    /// every rejected point.
    #[test]
    fn archive_front_is_sound(
        raw in proptest::collection::vec((0u32..50, 0u32..50), 1..40)
    ) {
        let pts: Vec<DesignPoint> = raw
            .iter()
            .map(|&(a, r)| point(f64::from(a) / 50.0, f64::from(r) + 1.0))
            .collect();
        let mut archive = ParetoArchive::new();
        archive.extend(pts.iter().cloned());
        let front = archive.front();
        for (i, a) in front.iter().enumerate() {
            for (j, b) in front.iter().enumerate() {
                prop_assert!(i == j || !a.dominates(b), "front self-dominates");
            }
        }
        for p in &pts {
            prop_assert!(
                front
                    .iter()
                    .any(|f| f.dominates(p)
                        || (f.accuracy == p.accuracy && f.area_mm2 == p.area_mm2)),
                "point ({}, {}) neither on the front nor dominated",
                p.accuracy,
                p.area_mm2
            );
        }
    }

    /// The grid strategy enumerates exactly the τ-qualified φ levels,
    /// in grid order, for arbitrary gate metric sets.
    #[test]
    fn grid_strategy_enumerates_qualified_phis(
        gates in proptest::collection::vec((80u32..100, -1i64..8), 1..30),
        steps in 1usize..8
    ) {
        let gates: Vec<(f64, i64)> =
            gates.iter().map(|&(t, p)| (f64::from(t) / 100.0, p)).collect();
        let tau_values: Vec<f64> =
            (0..steps).map(|i| 0.80 + 0.19 * i as f64 / steps.max(2) as f64).collect();
        let space = pax_core::explore::SearchSpace {
            tau_values: tau_values.clone(),
            contexts: vec![ContextSpace { use_coeff: false, gates: gates.clone() }],
        };
        let batch = ExhaustiveGrid::new().ask(&space);
        let mut expected: Vec<Candidate> = Vec::new();
        for &tau_c in &tau_values {
            let mut phis: Vec<i64> = gates
                .iter()
                .filter(|&&(t, _)| t >= tau_c - 1e-12)
                .map(|&(_, p)| p)
                .collect();
            phis.sort_unstable();
            phis.dedup();
            for phi_c in phis {
                expected.push(Candidate { use_coeff: false, tau_c, phi_c });
            }
        }
        prop_assert_eq!(batch, expected);
    }
}
