//! Property tests over the framework's two approximation layers.

use pax_core::coeff_approx::{approximate_model, CoeffApproxConfig};
use pax_core::mult_cache::MultCache;
use pax_core::{pareto, DesignPoint, Technique};
use pax_ml::model::LinearClassifier;
use pax_ml::quant::{QuantSpec, QuantizedModel};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = QuantizedModel> {
    (2usize..5, 2usize..7).prop_flat_map(|(k, n)| {
        proptest::collection::vec(proptest::collection::vec(-1.0f64..1.0, n), k)
            .prop_filter("weights must not be all-zero", |rows| {
                rows.iter().flatten().any(|w| w.abs() > 1e-3)
            })
            .prop_map(move |rows| {
                let biases = vec![0.0; rows.len()];
                QuantizedModel::from_linear_classifier(
                    "prop",
                    &LinearClassifier::new(rows, biases),
                    QuantSpec::default(),
                )
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Coefficient approximation invariants for arbitrary linear models:
    /// weights move at most e, stay in the representable range, the area
    /// proxy never grows, and biases are untouched.
    #[test]
    fn coeff_approx_invariants(model in arb_model(), e in 0i64..6) {
        let cache = MultCache::new(egt_pdk::egt_library());
        let cfg = CoeffApproxConfig { e, ..Default::default() };
        let (approx, report) = approximate_model(&model, &cache, &cfg);
        let (lo, hi) = model.spec.coef_range();
        for (before, after) in model.layer1.iter().zip(&approx.layer1) {
            prop_assert_eq!(before.bias, after.bias, "biases must not move");
            for (&w, &wa) in before.weights.iter().zip(&after.weights) {
                prop_assert!((w - wa).abs() <= e, "{} -> {} exceeds e={}", w, wa, e);
                prop_assert!((lo..=hi).contains(&wa));
            }
        }
        prop_assert!(report.proxy_after() <= report.proxy_before() + 1e-9);
        // Residual error is bounded by the worst one-sided drift.
        for sum in &report.sums {
            let n = model.layer1[sum.index].weights.len() as i64;
            prop_assert!(sum.residual_error.abs() <= n * e);
        }
    }

    /// Pareto front extraction is correct for arbitrary point clouds.
    #[test]
    fn pareto_front_correct(
        points in proptest::collection::vec((0.0f64..1.0, 1.0f64..1000.0), 1..40)
    ) {
        let pts: Vec<DesignPoint> = points
            .iter()
            .map(|&(acc, area)| DesignPoint {
                technique: Technique::Cross,
                tau_c: None,
                phi_c: None,
                coeff: None,
                accuracy: acc,
                area_mm2: area,
                power_mw: 0.0,
                gate_count: 0,
                critical_ms: 0.0,
            })
            .collect();
        let front = pareto::pareto_front(&pts);
        prop_assert!(!front.is_empty());
        // Nothing on the front is dominated by anything.
        for &f in &front {
            for p in &pts {
                prop_assert!(!p.dominates(&pts[f]), "front point dominated");
            }
        }
        // Everything off the front is dominated or duplicated.
        for (i, p) in pts.iter().enumerate() {
            if front.contains(&i) {
                continue;
            }
            let covered = front.iter().any(|&f| {
                pts[f].dominates(p)
                    || (pts[f].accuracy == p.accuracy && pts[f].area_mm2 == p.area_mm2)
            });
            prop_assert!(covered, "point {} escaped the front", i);
        }
    }

    /// The quantized golden model and its generated circuit agree on
    /// random inputs for arbitrary linear models (end-to-end hardware
    /// equivalence as a property).
    #[test]
    fn circuit_equals_golden(model in arb_model(), seed in any::<u64>()) {
        let circuit = pax_bespoke::BespokeCircuit::generate(&model);
        let mut state = seed | 1;
        for _ in 0..20 {
            let x: Vec<i64> = (0..model.n_inputs())
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    ((state >> 33) as i64) % (model.spec.input_max() + 1)
                })
                .collect();
            prop_assert_eq!(circuit.predict_one(&x), model.predict_q(&x));
        }
    }
}
