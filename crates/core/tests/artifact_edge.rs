//! Edge-case coverage for the `pax-artifact v1` text round trip.
//!
//! The happy path is covered in `artifact.rs`'s unit tests; these pin
//! the corners a hand-assembled or freshly-initialized artifact hits:
//! a `point` line whose optional metrics are all absent and whose
//! numeric metrics are all zero ("empty metrics"), and netlists whose
//! ports sit at the 64-bit width ceiling of the evaluators and the
//! text format.

use pax_core::artifact::Artifact;
use pax_core::{DesignPoint, Technique};
use pax_ml::model::LinearClassifier;
use pax_ml::quant::{QuantSpec, QuantizedModel};
use pax_netlist::{eval, NetId, NetlistBuilder};

fn tiny_model(name: &str) -> QuantizedModel {
    let svc = LinearClassifier::new(vec![vec![0.7, -0.3], vec![-0.5, 0.6]], vec![0.0, 0.1]);
    QuantizedModel::from_linear_classifier(name, &svc, QuantSpec::default())
}

/// All-empty metrics: optional thresholds absent, every number zero.
fn empty_point(gate_count: usize) -> DesignPoint {
    DesignPoint {
        technique: Technique::Exact,
        tau_c: None,
        phi_c: None,
        coeff: None,
        accuracy: 0.0,
        area_mm2: 0.0,
        power_mw: 0.0,
        gate_count,
        critical_ms: 0.0,
    }
}

#[test]
fn empty_metrics_round_trip() {
    let model = tiny_model("empty");
    let netlist = pax_bespoke::BespokeCircuit::generate(&model).netlist;
    let art = Artifact { point: empty_point(netlist.gate_count()), model, netlist };

    let text = art.to_text();
    // The optional fields serialize as bare dashes.
    let point_line = text.lines().nth(1).expect("point line");
    assert!(point_line.starts_with("point exact - - 0 0 0"), "got `{point_line}`");

    let back = Artifact::from_text(&text).expect("empty metrics must round-trip");
    assert_eq!(back.point, art.point);
    assert_eq!(back.point.tau_c, None);
    assert_eq!(back.point.phi_c, None);
    assert_eq!(back.model, art.model);
    assert_eq!(back.netlist, art.netlist);
}

/// Builds a netlist with the model's interface but 64-bit-wide ports —
/// the maximum width `eval_ports`, the simulator and the text format
/// support.
fn max_width_netlist(model: &QuantizedModel) -> pax_netlist::Netlist {
    let mut b = NetlistBuilder::new("wide");
    let mut buses = Vec::new();
    for i in 0..model.n_inputs() {
        buses.push(b.input_port(format!("x{i}"), 64));
    }
    // A 64-bit `class` port mixing pass-through bits, gates and both
    // rail constants, so every textio node flavour appears at width 64.
    let mut bits: Vec<NetId> = Vec::new();
    for i in 0..64 {
        let a = buses[0][i];
        let c = buses[1][63 - i];
        bits.push(match i % 4 {
            0 => a,
            1 => b.xor2(a, c),
            2 => b.nand2(a, c),
            _ => b.constant(i % 8 == 3),
        });
    }
    b.output_port("class", bits.into());
    b.finish()
}

#[test]
fn max_width_ports_round_trip() {
    let model = tiny_model("wide");
    let netlist = max_width_netlist(&model);
    assert_eq!(netlist.input_ports()[0].width(), 64);
    assert_eq!(netlist.output_port("class").unwrap().width(), 64);

    let art = Artifact { point: empty_point(netlist.gate_count()), model, netlist };
    let back = Artifact::from_text(&art.to_text()).expect("max-width ports must round-trip");
    assert_eq!(back.netlist, art.netlist, "64-bit ports must reload structurally identical");

    // Functional spot-check at the value-domain extremes: all-ones,
    // zero and an alternating pattern exercise the full 64-bit lanes.
    for (x0, x1) in [(u64::MAX, 0), (0, u64::MAX), (0xAAAA_AAAA_AAAA_AAAA, 0x5555_5555_5555_5555)] {
        let inputs = [("x0", x0), ("x1", x1)];
        let a = eval::eval_ports(&art.netlist, &inputs);
        let b = eval::eval_ports(&back.netlist, &inputs);
        assert_eq!(a["class"], b["class"], "x0={x0:#x}");
    }
}

#[test]
fn empty_metrics_and_max_width_compose() {
    // Both edge cases in one artifact, plus a save/load cycle through
    // the filesystem (the `InvalidData` mapping path).
    let model = tiny_model("compose");
    let netlist = max_width_netlist(&model);
    let art = Artifact { point: empty_point(netlist.gate_count()), model, netlist };

    let dir = std::env::temp_dir().join("pax-artifact-edge");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("edge.paxart");
    art.save(&path).unwrap();
    let back = Artifact::load(&path).unwrap();
    assert_eq!(back.point, art.point);
    assert_eq!(back.netlist, art.netlist);

    // Corrupt one netlist line: reload must fail with InvalidData, not
    // panic.
    let corrupted = art.to_text().replacen("netlist\n", "netlist\ngarbage line\n", 1);
    std::fs::write(&path, corrupted).unwrap();
    let err = Artifact::load(&path).expect_err("corrupted artifact must be rejected");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    std::fs::remove_file(&path).ok();
}

#[test]
fn coeff_gene_token_round_trips_and_old_lines_still_parse() {
    let model = tiny_model("gene");
    let netlist = pax_bespoke::BespokeCircuit::generate(&model).netlist;
    let mut point = empty_point(netlist.gate_count());
    point.technique = Technique::Cross;
    point.coeff = Some(pax_core::explore::CoeffGene::per_layer(&[2, 1]));
    let art = Artifact { point, model, netlist };

    let text = art.to_text();
    let point_line = text.lines().nth(1).expect("point line");
    assert!(point_line.ends_with(" 2/1"), "got `{point_line}`");
    let back = Artifact::from_text(&text).expect("gene token must round-trip");
    assert_eq!(back.point, art.point);

    // Pre-gene artifacts carry 9-token point lines: still accepted,
    // loading with no recorded gene.
    let old = text.replacen(" 2/1", "", 1);
    let back = Artifact::from_text(&old).expect("9-token point lines stay valid");
    assert_eq!(back.point.coeff, None);

    // A bare dash also means "no gene"; garbage is rejected.
    let dashed = text.replacen(" 2/1", " -", 1);
    assert_eq!(Artifact::from_text(&dashed).expect("dash token").point.coeff, None);
    let bad = text.replacen(" 2/1", " 2/x", 1);
    assert!(Artifact::from_text(&bad).is_err(), "malformed gene token must be rejected");
}

#[test]
fn zero_gate_netlist_artifact_round_trips() {
    // Pure-wiring netlist: gate_count 0, outputs alias inputs — the
    // smallest servable artifact shape.
    let model = tiny_model("wires");
    let mut b = NetlistBuilder::new("wires");
    let x0 = b.input_port("x0", 4);
    let _x1 = b.input_port("x1", 4);
    b.output_port("class", x0);
    let netlist = b.finish();
    assert_eq!(netlist.gate_count(), 0);
    let art = Artifact { point: empty_point(0), model, netlist };
    let back = Artifact::from_text(&art.to_text()).expect("wiring-only artifact round-trips");
    assert_eq!(back.netlist, art.netlist);
    assert_eq!(back.point.gate_count, 0);
}
