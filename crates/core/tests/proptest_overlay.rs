//! Differential pinning of overlay evaluation against the rebuild
//! pipeline.
//!
//! Overlay evaluation (`OverlayContext`: masked shared tape + symbolic
//! fold + incremental re-timing) replaces the per-candidate
//! re-synthesize/recompile/re-simulate pipeline everywhere. Its
//! admission ticket is **bit-for-bit equality on every measured axis**
//! — accuracy, area, power, critical-path delay (and gate counts) —
//! against the legacy pipeline, which is kept as
//! `try_evaluate_set_rebuild` solely to serve as this suite's oracle.
//!
//! Covered here, on real bespoke circuits (classifier *and* regressor,
//! so both score-decoding paths run):
//!
//! * random `(τc, φc)` candidates → bit-equal `PruneEval`s;
//! * thread-count invariance of the masked tape execution;
//! * the public `Evaluator` paths (`EvalMode::Overlay` vs
//!   `EvalMode::Rebuild`) producing identical `DesignPoint`s;
//! * `try_evaluate_grid` surfacing library gaps as `StudyError`
//!   instead of panicking.
//!
//! Run with a fixed seed (`PAX_PROPTEST_SEED=<n>`) for reproducible
//! case streams — CI pins one in the `overlay-differential` job.

use egt_pdk::{Library, TechParams};
use pax_bespoke::BespokeCircuit;
use pax_core::coeff_approx::CoeffApproxConfig;
use pax_core::explore::{
    Candidate, CoeffAxis, CoeffGene, EvalCache, EvalContext, EvalMode, Evaluator,
};
use pax_core::mult_cache::MultCache;
use pax_core::prune::{
    analyze, enumerate_grid, try_evaluate_grid, try_evaluate_set_rebuild, OverlayContext,
    PruneAnalysis, PruneConfig, PruneEval,
};
use pax_core::StudyError;
use pax_ml::quant::{QuantSpec, QuantizedModel};
use pax_ml::synth_data::blobs;
use pax_ml::Dataset;
use pax_netlist::NetId;
use proptest::prelude::*;

struct Fixture {
    circuit: BespokeCircuit,
    analysis: PruneAnalysis,
    test: Dataset,
}

fn classifier_fixture(seed: u64) -> Fixture {
    let data = blobs("ovc", 260, 3, 3, 0.09, 40 + (seed % 5));
    let (train, test) = data.split(0.7, 1);
    let (train, test) = pax_ml::normalize(&train, &test);
    let m = pax_ml::train::svm::train_svm_classifier(
        &train,
        &pax_ml::train::svm::SvmParams { epochs: 50, ..Default::default() },
        3,
    );
    let q = QuantizedModel::from_linear_classifier("ovc", &m, QuantSpec::default());
    let c = BespokeCircuit::generate(&q);
    let circuit = c.with_netlist(pax_synth::opt::optimize(&c.netlist));
    let analysis = analyze(&circuit.netlist, &circuit.model, &train);
    Fixture { circuit, analysis, test }
}

fn regressor_fixture(seed: u64) -> Fixture {
    let data = blobs("ovr", 240, 3, 3, 0.1, 90 + (seed % 5));
    let (train, test) = data.split(0.7, 1);
    let (train, test) = pax_ml::normalize(&train, &test);
    let m = pax_ml::train::svr::train_svr(
        &train,
        &pax_ml::train::svr::SvrParams { epochs: 60, ..Default::default() },
        7,
    );
    let q = QuantizedModel::from_svr("ovr", &m, train.n_classes, QuantSpec::default());
    let c = BespokeCircuit::generate(&q);
    let circuit = c.with_netlist(pax_synth::opt::optimize(&c.netlist));
    let analysis = analyze(&circuit.netlist, &circuit.model, &train);
    Fixture { circuit, analysis, test }
}

/// The candidate's gate set under the paper's step-3 filter.
fn gate_set(a: &PruneAnalysis, tau_c: f64, phi_c: i64) -> Vec<NetId> {
    let mut set: Vec<NetId> = a
        .candidates
        .iter()
        .copied()
        .filter(|&g| a.tau_of(g) >= tau_c - 1e-12 && a.phi_of(g) <= phi_c)
        .collect();
    set.sort_unstable();
    set
}

fn assert_bit_equal(overlay: &PruneEval, rebuild: &PruneEval, what: &str) {
    assert_eq!(overlay.accuracy.to_bits(), rebuild.accuracy.to_bits(), "{what}: accuracy");
    assert_eq!(overlay.area_mm2.to_bits(), rebuild.area_mm2.to_bits(), "{what}: area");
    assert_eq!(overlay.power_mw.to_bits(), rebuild.power_mw.to_bits(), "{what}: power");
    assert_eq!(overlay.critical_ms.to_bits(), rebuild.critical_ms.to_bits(), "{what}: delay");
    assert_eq!(overlay.gate_count, rebuild.gate_count, "{what}: gate count");
    assert_eq!(overlay.n_pruned, rebuild.n_pruned, "{what}: n_pruned");
}

fn check_fixture(f: &Fixture, tau_c: f64, phi_c: i64, threads: usize) {
    let lib = egt_pdk::egt_library();
    let tech = TechParams::egt();
    let set = gate_set(&f.analysis, tau_c, phi_c);
    let ctx = OverlayContext::new(&f.circuit.netlist, &f.circuit.model, &f.test, &lib, &tech)
        .expect("context over the EGT library")
        .with_threads(threads);
    let overlay = ctx.evaluate(&f.analysis, &set).expect("overlay evaluation");
    let rebuild = try_evaluate_set_rebuild(
        &f.circuit.netlist,
        &f.circuit.model,
        &f.test,
        &lib,
        &tech,
        &f.analysis,
        &set,
    )
    .expect("rebuild evaluation");
    assert_bit_equal(
        &overlay,
        &rebuild,
        &format!("τc={tau_c} φc={phi_c} |set|={} threads={threads}", set.len()),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Classifier circuits: overlay == rebuild on all four axes, for
    /// random threshold pairs and thread counts.
    #[test]
    fn classifier_overlay_equals_rebuild(
        seed in any::<u64>(),
        tau_c in 0.5f64..1.0,
        phi_raw in -1i64..12,
        threads in 1usize..4,
    ) {
        let f = classifier_fixture(seed);
        check_fixture(&f, tau_c, phi_raw, threads);
    }

    /// Regressor circuits exercise the `score0` dequantization path.
    #[test]
    fn regressor_overlay_equals_rebuild(
        seed in any::<u64>(),
        tau_c in 0.5f64..1.0,
        phi_raw in -1i64..12,
    ) {
        let f = regressor_fixture(seed);
        check_fixture(&f, tau_c, phi_raw, 1);
    }

    /// One `DeltaSession` reused across a random `(τc, φc)` chain —
    /// neighbour steps and arbitrary jumps alike — must stay bit-equal
    /// to a fresh `evaluate` at every link. This is the property the
    /// evaluator's lattice-ordered worker sessions rely on.
    #[test]
    fn delta_session_chain_equals_fresh_evaluate(
        seed in any::<u64>(),
        chain in proptest::collection::vec((0.5f64..1.0, -1i64..12), 2..7),
    ) {
        let f = classifier_fixture(seed);
        let lib = egt_pdk::egt_library();
        let tech = TechParams::egt();
        let ctx = OverlayContext::new(&f.circuit.netlist, &f.circuit.model, &f.test, &lib, &tech)
            .expect("context over the EGT library");
        let mut session = ctx.delta_session();
        for (i, &(tau_c, phi_c)) in chain.iter().enumerate() {
            let set = gate_set(&f.analysis, tau_c, phi_c);
            let fresh = ctx.evaluate(&f.analysis, &set).expect("fresh evaluation");
            let delta = ctx
                .evaluate_with_session(&f.analysis, &set, &mut session)
                .expect("session evaluation");
            assert_bit_equal(&delta, &fresh, &format!("chain step {i} |set|={}", set.len()));
        }
    }
}

/// Every distinct set of the paper's grid, at several thread counts:
/// the masked tape's chunked toggle counting must not leak into any
/// measured figure.
#[test]
fn grid_sweep_is_thread_invariant_and_bit_identical() {
    let f = classifier_fixture(1);
    let lib = egt_pdk::egt_library();
    let tech = TechParams::egt();
    let grid = enumerate_grid(&f.analysis, &PruneConfig::default());
    let reference: Vec<PruneEval> = grid
        .sets
        .iter()
        .map(|s| {
            try_evaluate_set_rebuild(
                &f.circuit.netlist,
                &f.circuit.model,
                &f.test,
                &lib,
                &tech,
                &f.analysis,
                s,
            )
            .unwrap()
        })
        .collect();
    for threads in [1usize, 2, 8] {
        let ctx = OverlayContext::new(&f.circuit.netlist, &f.circuit.model, &f.test, &lib, &tech)
            .unwrap()
            .with_threads(threads);
        for (s, want) in grid.sets.iter().zip(&reference) {
            let got = ctx.evaluate(&f.analysis, s).unwrap();
            assert_bit_equal(&got, want, &format!("threads={threads} |set|={}", s.len()));
        }
    }
}

/// The public engine path: an `Evaluator` in overlay mode produces
/// `DesignPoint`s identical to one in rebuild mode.
#[test]
fn evaluator_modes_agree_bit_for_bit() {
    let f = classifier_fixture(2);
    let lib = egt_pdk::egt_library();
    let tech = TechParams::egt();
    let contexts = || {
        vec![EvalContext {
            coeff: CoeffGene::exact(),
            netlist: &f.circuit.netlist,
            model: &f.circuit.model,
            analysis: f.analysis.clone(),
        }]
    };
    let candidates: Vec<Candidate> = [(0.8, 3), (0.9, 0), (0.95, -1), (0.99, 8), (0.85, 5)]
        .iter()
        .map(|&(tau_c, phi_c)| Candidate { coeff: CoeffGene::exact(), tau_c, phi_c })
        .collect();

    let overlay_eval = Evaluator::new(&lib, &tech, &f.test, contexts());
    assert_eq!(overlay_eval.mode(), EvalMode::Overlay, "overlay is the default");
    let (a, fresh_a) =
        overlay_eval.evaluate_batch(&candidates, &mut EvalCache::new(), None).unwrap();

    let rebuild_eval =
        Evaluator::new(&lib, &tech, &f.test, contexts()).with_mode(EvalMode::Rebuild);
    let (b, fresh_b) =
        rebuild_eval.evaluate_batch(&candidates, &mut EvalCache::new(), None).unwrap();

    assert_eq!(fresh_a, fresh_b);
    assert_eq!(a.len(), b.len());
    for ((ca, pa), (cb, pb)) in a.iter().zip(&b) {
        assert_eq!(ca, cb);
        assert_eq!(pa.accuracy.to_bits(), pb.accuracy.to_bits());
        assert_eq!(pa.area_mm2.to_bits(), pb.area_mm2.to_bits());
        assert_eq!(pa.power_mw.to_bits(), pb.power_mw.to_bits());
        assert_eq!(pa.critical_ms.to_bits(), pb.critical_ms.to_bits());
        assert_eq!(pa.gate_count, pb.gate_count);
    }
}

/// Satellite: grid evaluation propagates library gaps as `StudyError`
/// instead of panicking mid-pool.
#[test]
fn grid_evaluation_surfaces_library_errors() {
    let f = classifier_fixture(3);
    let empty = Library::new("empty", 1.0);
    let tech = TechParams::egt();
    let grid = enumerate_grid(&f.analysis, &PruneConfig::default());
    let err = try_evaluate_grid(
        &f.circuit.netlist,
        &f.circuit.model,
        &f.test,
        &empty,
        &tech,
        &f.analysis,
        &grid,
    )
    .expect_err("empty library must fail, not panic");
    assert!(matches!(err, StudyError::Library(_)), "got {err}");
}

/// A training-set-carrying fixture for the coefficient-axis
/// differential: the axis materializes per-gene base circuits itself,
/// so it needs the train split the given context was analyzed with.
struct AxisFixture {
    model: QuantizedModel,
    netlist: pax_netlist::Netlist,
    analysis: PruneAnalysis,
    train: Dataset,
    test: Dataset,
}

fn axis_fixture(seed: u64) -> AxisFixture {
    let data = blobs("ovx", 240, 3, 3, 0.09, 40 + (seed % 5));
    let (train, test) = data.split(0.7, 1);
    let (train, test) = pax_ml::normalize(&train, &test);
    let m = pax_ml::train::svm::train_svm_classifier(
        &train,
        &pax_ml::train::svm::SvmParams { epochs: 50, ..Default::default() },
        3,
    );
    let model = QuantizedModel::from_linear_classifier("ovx", &m, QuantSpec::default());
    let netlist = pax_synth::opt::optimize(&BespokeCircuit::generate(&model).netlist);
    let analysis = analyze(&netlist, &model, &train);
    AxisFixture { model, netlist, analysis, train, test }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The graded coefficient axis: an evaluator whose space holds the
    /// exact base plus lazily-materialized per-gene contexts must
    /// return bit-identical `DesignPoint`s in overlay and rebuild mode
    /// for candidates on *every* gene — the stacked coeff+prune
    /// admission ticket on all four measured axes.
    #[test]
    fn coeff_axis_overlay_equals_rebuild(
        seed in any::<u64>(),
        tau_c in 0.5f64..1.0,
        phi_raw in -1i64..12,
    ) {
        let f = axis_fixture(seed);
        let lib = egt_pdk::egt_library();
        let tech = TechParams::egt();
        let cache = MultCache::new(lib.clone());
        cache.build_range(f.model.spec.input_bits, f.model.spec.coef_bits);
        let contexts = || {
            vec![EvalContext {
                coeff: CoeffGene::exact(),
                netlist: &f.netlist,
                model: &f.model,
                analysis: f.analysis.clone(),
            }]
        };
        let axis = || CoeffAxis {
            model: &f.model,
            train: &f.train,
            cache: &cache,
            cfg: CoeffApproxConfig::default(),
            levels: vec![2, 4],
        };
        let overlay = Evaluator::new(&lib, &tech, &f.test, contexts()).with_coeff_axis(axis());
        let rebuild = Evaluator::new(&lib, &tech, &f.test, contexts())
            .with_coeff_axis(axis())
            .with_mode(EvalMode::Rebuild);
        // One candidate per gene: exact plus both graded levels.
        let candidates: Vec<Candidate> = overlay
            .genes()
            .into_iter()
            .map(|coeff| Candidate { coeff, tau_c, phi_c: phi_raw })
            .collect();
        prop_assert!(candidates.len() >= 3, "axis must open graded contexts");
        let (a, fresh_a) = overlay.evaluate_batch(&candidates, &mut EvalCache::new(), None).unwrap();
        let (b, fresh_b) = rebuild.evaluate_batch(&candidates, &mut EvalCache::new(), None).unwrap();
        prop_assert_eq!(fresh_a, fresh_b);
        prop_assert_eq!(a.len(), b.len());
        for ((ca, pa), (cb, pb)) in a.iter().zip(&b) {
            prop_assert_eq!(ca, cb);
            prop_assert_eq!(pa.accuracy.to_bits(), pb.accuracy.to_bits());
            prop_assert_eq!(pa.area_mm2.to_bits(), pb.area_mm2.to_bits());
            prop_assert_eq!(pa.power_mw.to_bits(), pb.power_mw.to_bits());
            prop_assert_eq!(pa.critical_ms.to_bits(), pb.critical_ms.to_bits());
            prop_assert_eq!(pa.gate_count, pb.gate_count);
        }
    }
}
