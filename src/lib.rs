//! Workspace umbrella crate.
//!
//! Re-exports every `pax-*` crate under one roof so the repository-level
//! integration tests (`tests/`) and examples (`examples/`) have a single
//! dependency surface. Library users should depend on the individual
//! crates instead.

#![forbid(unsafe_code)]

pub use egt_pdk;
pub use pax_bespoke;
pub use pax_core;
pub use pax_ml;
pub use pax_netlist;
pub use pax_serve;
pub use pax_sim;
pub use pax_sta;
pub use pax_synth;
