//! Offline stand-in for the `serde` crate.
//!
//! No crates.io mirror is reachable from the build environment, so this
//! vendored crate provides the two trait names and the derive macros the
//! repository imports. Actual persistence is implemented by explicit,
//! versioned text formats (`pax_ml::serialize` for models,
//! `pax_netlist::textio` for netlists, `pax_core::artifact` for servable
//! bundles), which keeps on-disk artifacts human-diffable and free of a
//! heavyweight dependency.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
