//! Deterministic case generation.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 48 }
    }
}

/// xoshiro256**-based generator seeded from the test's full path, so each
/// property gets an independent but run-to-run stable stream.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Creates the stream for one named test.
    ///
    /// The stream is deterministic per name. Setting the
    /// `PAX_PROPTEST_SEED` environment variable (a `u64`) salts every
    /// stream with that value — CI pins one so a run's generated cases
    /// reproduce exactly from the logged command line, and varying it
    /// explores fresh case streams without touching the tests.
    pub fn for_test(name: &str) -> Self {
        Self::for_test_salted(name, env_salt())
    }

    /// [`TestRng::for_test`] with an explicit salt instead of the
    /// `PAX_PROPTEST_SEED` environment lookup.
    pub fn for_test_salted(name: &str, salt: u64) -> Self {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        Self::from_seed(h.finish() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Creates a stream from an explicit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `usize` in `[min, max]`.
    pub fn usize_in(&mut self, min: usize, max: usize) -> usize {
        debug_assert!(min <= max);
        min + (self.next_u64() % (max as u64 - min as u64 + 1)) as usize
    }

    /// Uniform `i128` in `[lo, hi]`.
    pub fn i128_in(&mut self, lo: i128, hi: i128) -> i128 {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + (((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span) as i128
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The process-wide stream salt from `PAX_PROPTEST_SEED` (0 when unset
/// or unparsable).
fn env_salt() -> u64 {
    std::env::var("PAX_PROPTEST_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn salted_streams_are_deterministic_and_distinct() {
        let mut a = TestRng::for_test_salted("t", 42);
        let mut b = TestRng::for_test_salted("t", 42);
        let mut c = TestRng::for_test_salted("t", 43);
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb, "same salt, same stream");
        assert_ne!(va, vc, "different salt, different stream");
    }

    #[test]
    fn zero_salt_matches_unsalted_default() {
        let mut plain = TestRng::for_test_salted("t", 0);
        // for_test reads the env; under the test harness the variable
        // is normally unset, but don't assume — compare via from_seed.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        use std::hash::{Hash, Hasher};
        "t".hash(&mut h);
        let mut reference = TestRng::from_seed(h.finish());
        assert_eq!(plain.next_u64(), reference.next_u64());
    }
}
