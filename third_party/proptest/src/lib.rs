//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest this workspace's property tests
//! use — the [`proptest!`] macro, [`Strategy`] with `prop_map` /
//! `prop_flat_map` / `prop_filter`, range and tuple strategies,
//! [`collection::vec`], [`prop_oneof!`], `any::<T>()` and string
//! strategies from a small regex subset. Cases are generated from a
//! deterministic per-test RNG (seeded by the test name), so failures
//! reproduce across runs. Shrinking is not implemented: a failing case
//! panics with the generated inputs still bound, which is enough for the
//! invariant-style properties in this tree.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// Commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::SizeRange;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        let size = size.into();
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.usize_in(self.size.min, self.size.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Inclusive length bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self { min: *r.start(), max: *r.end() }
    }
}

/// Asserts a property-test condition, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniform choice between several strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property tests: each `name(arg in strategy, ...)` function
/// becomes a `#[test]` running `ProptestConfig::cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = &$strat;)*
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::strategy::Strategy::generate($arg, &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (i64, i64)> {
        (-50i64..50, 0i64..=9).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(v in 3usize..17, w in -5i64..=5, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&v));
            prop_assert!((-5..=5).contains(&w));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_lengths_and_elements(xs in crate::collection::vec(0u64..4, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&x| x < 4));
        }

        #[test]
        fn combinators_compose(p in arb_pair(), flag in any::<bool>()) {
            let (a, b) = p;
            prop_assert!((-50..50).contains(&a));
            prop_assert!((0..=9).contains(&b));
            let _ = flag;
        }

        #[test]
        fn string_patterns_match_shape(s in "[A-Z][A-Z0-9_]{0,7}") {
            prop_assert!(!s.is_empty() && s.len() <= 8, "bad length: {s:?}");
            let mut chars = s.chars();
            prop_assert!(chars.next().unwrap().is_ascii_uppercase());
            prop_assert!(chars.all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'));
        }

        #[test]
        fn oneof_and_filter(v in prop_oneof![0i64..10, 100i64..110].prop_filter("even", |v| v % 2 == 0)) {
            prop_assert!(v % 2 == 0);
            prop_assert!((0..10).contains(&v) || (100..110).contains(&v));
        }

        #[test]
        fn flat_map_links_values(pair in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(any::<bool>(), n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_test("stable");
        let mut b = crate::TestRng::for_test("stable");
        let s = 0usize..1000;
        for _ in 0..50 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
