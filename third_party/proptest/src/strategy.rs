//! The [`Strategy`] trait, primitive strategies and combinators.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike full proptest there is no shrinking: `generate` draws one
/// value per case from the deterministic test stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws from
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Rejects values failing `f`, retrying with fresh draws.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated, type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..10_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 10000 consecutive cases", self.reason);
    }
}

/// Uniform choice among boxed strategies — see [`crate::prop_oneof!`].
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union of `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.usize_in(0, self.arms.len() - 1);
        self.arms[i].generate(rng)
    }
}

/// Strategy producing one constant value.
#[derive(Debug, Clone)]
pub struct Just<V: Clone>(pub V);

impl<V: Clone> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

/// Values generatable by [`any`].
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy for any value of an [`Arbitrary`] type.
#[derive(Debug, Clone)]
pub struct Any<A> {
    _marker: PhantomData<A>,
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any { _marker: PhantomData }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.i128_in(self.start as i128, self.end as i128 - 1) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                rng.i128_in(*self.start() as i128, *self.end() as i128) as $t
            }
        }
    )*};
}
range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
    (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
}

/// String strategies from a small regex subset: literals, `[...]`
/// classes (ranges and literal members), `\PC` (printable ASCII), `\d`,
/// `\w`, and the quantifiers `*`, `+`, `?`, `{m}`, `{m,n}`. Exactly the
/// shapes this workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.usize_in(atom.min, atom.max);
            for _ in 0..n {
                let i = rng.usize_in(0, atom.chars.len() - 1);
                out.push(atom.chars[i]);
            }
        }
        out
    }
}

struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

fn printable_ascii() -> Vec<char> {
    (0x20u8..0x7F).map(char::from).collect()
}

fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let mut atoms = Vec::new();
    let mut it = pattern.chars().peekable();
    while let Some(c) = it.next() {
        let chars = match c {
            '[' => {
                let mut raw = Vec::new();
                for d in it.by_ref() {
                    if d == ']' {
                        break;
                    }
                    raw.push(d);
                }
                let mut set = Vec::new();
                let mut i = 0;
                while i < raw.len() {
                    if i + 2 < raw.len() && raw[i + 1] == '-' {
                        for u in (raw[i] as u32)..=(raw[i + 2] as u32) {
                            set.push(char::from_u32(u).expect("class range"));
                        }
                        i += 3;
                    } else {
                        set.push(raw[i]);
                        i += 1;
                    }
                }
                set
            }
            '\\' => match it.next() {
                Some('P') => {
                    // proptest idiom `\PC`: any printable character.
                    let _class = it.next();
                    printable_ascii()
                }
                Some('d') => ('0'..='9').collect(),
                Some('w') => ('a'..='z')
                    .chain('A'..='Z')
                    .chain('0'..='9')
                    .chain(std::iter::once('_'))
                    .collect(),
                Some(other) => vec![other],
                None => vec!['\\'],
            },
            lit => vec![lit],
        };
        let (min, max) = match it.peek() {
            Some('*') => {
                it.next();
                (0, 16)
            }
            Some('+') => {
                it.next();
                (1, 16)
            }
            Some('?') => {
                it.next();
                (0, 1)
            }
            Some('{') => {
                it.next();
                let mut spec = String::new();
                for d in it.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad {m,n} quantifier"),
                        hi.trim().parse().expect("bad {m,n} quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {m} quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        assert!(!chars.is_empty(), "empty character class in `{pattern}`");
        atoms.push(Atom { chars, min, max });
    }
    atoms
}
