//! Offline stand-in for `serde_derive`.
//!
//! The repository's structured persistence goes through explicit text
//! formats (`pax_ml::serialize`, `pax_netlist::textio`,
//! `pax_core::artifact`), so the serde derives only need to accept the
//! attribute positions and expand to nothing. This keeps every
//! `#[derive(Serialize, Deserialize)]` in the tree compiling without a
//! crates.io dependency.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (including `#[serde(...)]` field and
/// container attributes) and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (including `#[serde(...)]` field
/// and container attributes) and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
