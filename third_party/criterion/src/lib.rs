//! Offline stand-in for the `criterion` crate.
//!
//! Provides the harness surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros — measuring
//! wall-clock time with `std::time::Instant` instead of criterion's
//! statistical machinery. Each benchmark runs one warm-up pass plus
//! `sample_size` timed samples and prints min/mean/max per iteration,
//! which is enough to compare configurations (e.g. batched vs per-sample
//! serving) without a crates.io dependency.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export so `std::hint::black_box`-style call sites can use
/// `criterion::black_box` too.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark harness entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (default 10).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher { samples: Vec::new() };
        // Warm-up pass (not recorded).
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let per_iter: Vec<f64> = bencher
            .samples
            .iter()
            .map(|s| s.elapsed.as_secs_f64() / s.iters.max(1) as f64)
            .collect();
        let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
        let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
        let max = per_iter.iter().copied().fold(0.0f64, f64::max);
        println!(
            "bench {name:<40} [{} samples] min {} mean {} max {}",
            per_iter.len(),
            format_time(min),
            format_time(mean),
            format_time(max),
        );
        self
    }
}

fn format_time(seconds: f64) -> String {
    if !seconds.is_finite() {
        "n/a".to_owned()
    } else if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

struct Sample {
    iters: u64,
    elapsed: Duration,
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Sample>,
}

impl Bencher {
    /// Times repeated executions of `f`, keeping its output live.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed();
        // Aim for ~50 ms of work per sample, with at least one run.
        let iters = if once.as_secs_f64() > 0.05 {
            1
        } else {
            ((0.05 / once.as_secs_f64().max(1e-9)) as u64).clamp(1, 10_000)
        };
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.samples.push(Sample { iters: iters + 1, elapsed: once + start.elapsed() });
    }
}

/// Groups benchmark functions, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("stub/sum", |b| b.iter(|| (0..100u64).map(black_box).sum::<u64>()));
    }

    criterion_group! {
        name = grouped;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    criterion_group!(simple, sample_bench);

    #[test]
    fn groups_execute() {
        grouped();
        simple();
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(format_time(2.5).ends_with(" s"));
        assert!(format_time(2.5e-3).ends_with(" ms"));
        assert!(format_time(2.5e-6).ends_with(" µs"));
        assert!(format_time(2.5e-9).ends_with(" ns"));
    }
}
