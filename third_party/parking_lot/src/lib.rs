//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly, and a panicking
//! holder never poisons the lock for everyone else (the inner value is
//! recovered via `into_inner`). This is all the surface the workspace
//! uses (`pax_core::mult_cache`, `pax_serve`).

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// Non-poisoning reader–writer lock.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { inner: self.inner.read().unwrap_or_else(PoisonError::into_inner) }
    }

    /// Acquires exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { inner: self.inner.write().unwrap_or_else(PoisonError::into_inner) }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Non-poisoning mutex.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can hand the
/// guard to `std::sync::Condvar` by value and restore it afterwards —
/// parking_lot's `wait(&mut guard)` signature over std internals.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex around `value`.
    pub const fn new(value: T) -> Self {
        Self { inner: sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)) }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

/// Result of a timed [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self { inner: sync::Condvar::new() }
    }

    /// Blocks until notified, releasing the guarded mutex while parked.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard holds the lock");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard holds the lock");
        let (inner, res) =
            self.inner.wait_timeout(inner, timeout).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult { timed_out: res.timed_out() }
    }

    /// Wakes one parked waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 41;
        assert_eq!(*l.read(), 42);
        assert_eq!(l.into_inner(), 42);
    }

    #[test]
    fn mutex_and_condvar_hand_off() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            *g = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait(&mut g);
        }
        assert!(*g);
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }
}
