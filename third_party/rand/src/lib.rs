//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io mirror, so this
//! workspace vendors a minimal, deterministic implementation of exactly
//! the surface the repository uses: [`rngs::StdRng`], [`SeedableRng`],
//! [`RngExt`] (`random`, `random_range`) and [`seq::SliceRandom`]
//! (`shuffle`). The core generator is xoshiro256** seeded through
//! SplitMix64 — the same construction rand's `StdRng` documentation
//! describes as acceptable for non-cryptographic use. Streams are stable
//! across runs and platforms, which the seeded synthetic datasets rely
//! on.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly without further parameters.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value in the range from `rng`.
    ///
    /// # Panics
    ///
    /// Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_ranges!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Ergonomic sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Uniform value of a [`Standard`]-samplable type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (API stand-in for rand's
    /// `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place random reordering.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle driven by `rng`.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
            let i = rng.random_range(-3i64..=3);
            assert!((-3..=3).contains(&i));
            let u = rng.random_range(0usize..10);
            assert!(u < 10);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn bool_and_usize_sampling_cover_both_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[usize::from(rng.random::<bool>())] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
