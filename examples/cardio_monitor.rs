//! Low-end healthcare scenario: a disposable cardiotocography monitor
//! patch (the paper's "smart bandage" class of applications).
//!
//! The patch has a hard area budget — printed substrate is cheap but the
//! patch is small — so instead of the battery constraint this example
//! selects from the Pareto front under an area cap and shows the
//! accuracy/area trade-off curve the full exploration produces.
//!
//! ```text
//! cargo run --release -p pax-core --example cardio_monitor
//! ```

use pax_core::framework::{Framework, FrameworkConfig};
use pax_ml::quant::{QuantSpec, QuantizedModel};
use pax_ml::synth_data::{cardio, SynthConfig};
use pax_ml::train::svm::{train_svm_classifier, SvmParams};

const AREA_BUDGET_CM2: f64 = 12.0;

fn main() {
    let cfg = SynthConfig { size_factor: 0.4, ..SynthConfig::default() };
    let data = cardio(&cfg);
    let (train, test) = data.split(0.7, 5);
    let (train, test) = pax_ml::normalize(&train, &test);
    println!(
        "cardio dataset: {} samples, {} features, classes {:?} (normal/suspect/pathological)",
        data.len(),
        data.n_features(),
        data.class_counts()
    );

    let svc = train_svm_classifier(
        &train,
        &SvmParams { lr: 0.1, epochs: 600, batch: 64, ..Default::default() },
        9,
    );
    let model = QuantizedModel::from_linear_classifier("cardio-patch", &svc, QuantSpec::default());

    let fw = Framework::new(FrameworkConfig::default());
    let study = fw.run_study(&model, &train, &test);

    println!(
        "\nexact bespoke: {:.1} cm² at accuracy {:.3} (budget: {AREA_BUDGET_CM2} cm²)",
        study.baseline.area_cm2(),
        study.baseline.accuracy
    );
    println!("\nPareto front (accuracy vs area):");
    for p in study.pareto_front() {
        let marker = if p.area_cm2() <= AREA_BUDGET_CM2 { "within budget" } else { "over budget" };
        println!(
            "  {:12} {:6.2} cm²  acc {:.3}  {marker}",
            p.technique.label(),
            p.area_cm2(),
            p.accuracy
        );
    }

    // Pick the most accurate design inside the budget.
    let pick = study
        .pareto_front()
        .into_iter()
        .filter(|p| p.area_cm2() <= AREA_BUDGET_CM2)
        .max_by(|a, b| a.accuracy.partial_cmp(&b.accuracy).expect("finite"));
    match pick {
        Some(p) => {
            println!(
                "\nselected: {} design, {:.1} cm², {:.1} mW, accuracy {:.3} \
                 (baseline would need {:.1} cm²)",
                p.technique.label(),
                p.area_cm2(),
                p.power_mw,
                p.accuracy,
                study.baseline.area_cm2()
            );
            let nl = fw.materialize(&model, &train, &p);
            println!("materialized netlist: {} gates", nl.gate_count());
        }
        None => println!("\nno design fits {AREA_BUDGET_CM2} cm² — relax the budget"),
    }
}
