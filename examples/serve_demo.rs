//! Serving demo: study the cardio classifier, pick a design off the
//! Pareto front, export it as a servable artifact, and stream live
//! traffic through the `pax-serve` engine while its metrics tick.
//!
//! ```text
//! cargo run --release --example serve_demo
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pax_core::artifact::Artifact;
use pax_core::framework::{Framework, FrameworkConfig};
use pax_core::Technique;
use pax_ml::quant::{QuantSpec, QuantizedModel};
use pax_ml::synth_data::{cardio, SynthConfig};
use pax_ml::train::svm::{train_svm_classifier, SvmParams};
use pax_serve::{EngineConfig, ServeEngine};

fn main() {
    // ---- Offline: train, study, select, export ----------------------
    let data = cardio(&SynthConfig::small());
    let (train, test) = data.split(0.7, 1);
    let (train, test) = pax_ml::normalize(&train, &test);
    let svm = train_svm_classifier(
        &train,
        &SvmParams { lr: 0.1, epochs: 400, batch: 64, ..Default::default() },
        0xCA2D10,
    );
    let model = QuantizedModel::from_linear_classifier("cardio", &svm, QuantSpec::default());

    let fw = Framework::new(FrameworkConfig::default());
    let study = fw.run_study(&model, &train, &test);
    let front = study.pareto_front();
    // Smallest genuinely pruned cross-layer design within 2% loss — the
    // interesting case for the live auditor (nonzero divergence).
    let pick = study
        .cross
        .iter()
        .filter(|p| p.tau_c.is_some() && p.accuracy >= study.baseline.accuracy - 0.02)
        .min_by(|a, b| a.area_mm2.total_cmp(&b.area_mm2))
        .cloned()
        .unwrap_or_else(|| study.best_within_loss(Technique::Cross, 0.02));
    println!(
        "study: {} designs on the Pareto front; picked cross-layer point \
         (τc={:?}, φc={:?}) — accuracy {:.3}, {:.1} cm², {:.1} mW",
        front.len(),
        pick.tau_c,
        pick.phi_c,
        pick.accuracy,
        pick.area_cm2(),
        pick.power_mw,
    );

    let artifact = fw.export_artifact(&model, &train, &pick);
    let path = std::env::temp_dir().join("cardio.paxart");
    artifact.save(&path).expect("write artifact");
    let artifact = Artifact::load(&path).expect("reload artifact");
    println!(
        "artifact round-tripped through {} ({} gates, {} coefficients)",
        path.display(),
        artifact.netlist.gate_count(),
        artifact.model.n_coefficients(),
    );

    // ---- Online: register and stream traffic -------------------------
    let engine =
        Arc::new(ServeEngine::new(EngineConfig { audit_fraction: 0.25, ..Default::default() }));
    engine.register(artifact.clone()).expect("register cardio");

    let rows: Arc<Vec<Vec<i64>>> =
        Arc::new(test.features.iter().map(|x| artifact.model.quantize_input(x)).collect());
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..4)
        .map(|c| {
            let engine = Arc::clone(&engine);
            let rows = Arc::clone(&rows);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut sent = 0u64;
                // Pipelined client: keep a window of requests in flight
                // so worker batches actually fill their 64 lanes.
                while !stop.load(Ordering::Relaxed) {
                    let mut tickets = Vec::with_capacity(128);
                    for row in rows.iter().skip(c).step_by(4).take(128) {
                        match engine.submit("cardio", row.clone()) {
                            Ok(ticket) => tickets.push(ticket),
                            Err(_) => std::thread::yield_now(), // backpressure
                        }
                    }
                    sent += tickets.len() as u64;
                    for ticket in tickets {
                        let _ = ticket.wait();
                    }
                }
                sent
            })
        })
        .collect();

    for tick in 1..=5 {
        std::thread::sleep(Duration::from_millis(200));
        let snapshot = engine.metrics("cardio").expect("registered");
        println!("t+{}ms  {snapshot}", tick * 200);
    }
    stop.store(true, Ordering::Relaxed);
    let total: u64 = clients.into_iter().map(|c| c.join().expect("client")).sum();

    let snapshot = engine.metrics("cardio").expect("registered");
    println!(
        "served {total} requests from 4 clients — live divergence {:.2}% \
         (recorded study accuracy loss vs golden model: {:.2}%)",
        snapshot.divergence * 100.0,
        100.0 * (study.coeff.accuracy - artifact.point.accuracy).max(0.0),
    );

    // ---- Telemetry: tail latency and the exposition formats ----------
    println!(
        "latency: mean {:.3} ms, p50 {:.3} ms, p99 {:.3} ms",
        snapshot.mean_latency_ms, snapshot.p50_latency_ms, snapshot.p99_latency_ms,
    );
    assert!(snapshot.p50_latency_ms > 0.0, "served traffic must record nonzero p50");
    assert!(snapshot.p99_latency_ms > 0.0, "served traffic must record nonzero p99");
    assert!(
        snapshot.p50_latency_ms <= snapshot.p99_latency_ms,
        "quantiles must be ordered: p50 {} > p99 {}",
        snapshot.p50_latency_ms,
        snapshot.p99_latency_ms,
    );

    let telemetry = engine.telemetry();
    println!("\n{}", telemetry.to_table());
    println!("{}", telemetry.to_prometheus());
    std::fs::remove_file(&path).ok();
}
