//! Smart-packaging scenario: a printed wine-quality sensor label.
//!
//! The paper's motivating domains — smart packaging, fast-moving
//! consumer goods — need a classifier printed directly on the package
//! and powered by a single Molex 30 mW battery. This example walks the
//! RedWine catalog models through the framework and reports which
//! designs become battery-feasible (in the paper, the cross-layer flow
//! is the only technique that unlocks new circuit families).
//!
//! ```text
//! cargo run --release -p pax-core --example wine_quality_sensor
//! ```

use egt_pdk::TechParams;
use pax_core::framework::{Framework, FrameworkConfig};
use pax_core::Technique;
use pax_ml::quant::{QuantSpec, QuantizedModel};
use pax_ml::synth_data::{redwine, SynthConfig};
use pax_ml::train::svm::{train_svm_classifier, SvmParams};
use pax_ml::train::svr::{train_svr, SvrParams};

fn main() {
    let tech = TechParams::egt();
    // Reduced dataset for a quick demo run; drop `size_factor` for the
    // full-size experiment.
    let cfg = SynthConfig { size_factor: 0.4, ..SynthConfig::default() };
    let data = redwine(&cfg);
    let (train, test) = data.split(0.7, 11);
    let (train, test) = pax_ml::normalize(&train, &test);
    println!(
        "wine dataset: {} samples, {} features, {} quality classes",
        data.len(),
        data.n_features(),
        data.n_classes
    );

    let fw = Framework::new(FrameworkConfig { tech: tech.clone(), ..Default::default() });

    // Candidate architectures for the label: the cheap regressor and the
    // per-class SVM.
    let svr = train_svr(&train, &SvrParams::default(), 3);
    let svr_model =
        QuantizedModel::from_svr("wine-svr", &svr, data.n_classes, QuantSpec::default());
    let svc =
        train_svm_classifier(&train, &SvmParams { lr: 0.1, epochs: 400, ..Default::default() }, 3);
    let svc_model = QuantizedModel::from_linear_classifier("wine-svc", &svc, QuantSpec::default());

    for model in [&svr_model, &svc_model] {
        let study = fw.run_study(model, &train, &test);
        println!("\n=== {} ({}) ===", model.name, model.kind);
        for (label, point) in [
            ("exact bespoke", study.baseline.clone()),
            ("coeff approx", study.best_within_loss(Technique::CoeffApprox, 0.01)),
            ("pruning only", study.best_within_loss(Technique::PruneOnly, 0.01)),
            ("cross-layer", study.best_within_loss(Technique::Cross, 0.01)),
        ] {
            let battery =
                if tech.fits_battery(point.power_mw) { "fits 30 mW battery" } else { "too hungry" };
            println!(
                "  {label:14} {:6.2} cm² {:6.2} mW acc {:.3} — {battery}",
                point.area_cm2(),
                point.power_mw,
                point.accuracy
            );
        }
    }
}
