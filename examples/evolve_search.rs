//! Evolutionary cross-layer search on the pluggable exploration
//! engine: one engine, two strategies, shared measurements.
//!
//! Runs the paper-faithful exhaustive `(τc, φc)` sweep and a seeded
//! NSGA-II search over the *joint* genome (baseline vs.
//! coefficient-approximated base circuit × pruning thresholds) on the
//! same [`Engine`], then compares the fronts by 2-D hypervolume.
//! Because both strategies share the engine's content-hashed
//! evaluation cache, any design the sweep already measured is free for
//! the evolutionary pass.
//!
//! ```text
//! cargo run --release --example evolve_search
//! PAX_SEARCH_SEED=7 cargo run --release --example evolve_search   # reseeded
//! ```

use pax_bespoke::BespokeCircuit;
use pax_core::coeff_approx::approximate_model;
use pax_core::explore::{
    Engine, EvalContext, Evaluator, ExhaustiveGrid, Nsga2, Nsga2Config, ParetoArchive,
    SearchOutcome,
};
use pax_core::mult_cache::MultCache;
use pax_core::prune::{analyze, PruneConfig};
use pax_ml::quant::{QuantSpec, QuantizedModel};
use pax_ml::synth_data::blobs;
use pax_ml::train::svm::{train_svm_classifier, SvmParams};

fn main() {
    // 1. A small printed classifier: train, quantize.
    let data = blobs("evolve", 520, 4, 3, 0.08, 42);
    let (train, test) = data.split(0.7, 1);
    let (train, test) = pax_ml::normalize(&train, &test);
    let svm = train_svm_classifier(&train, &SvmParams::default(), 7);
    let model = QuantizedModel::from_linear_classifier("evolve", &svm, QuantSpec::default());

    // 2. Both base circuits of the cross-layer flow: the exact bespoke
    //    baseline and the coefficient-approximated variant.
    let lib = egt_pdk::egt_library();
    let tech = egt_pdk::TechParams::egt();
    let cache = MultCache::new(lib.clone());
    cache.build_range(model.spec.input_bits, model.spec.coef_bits);
    let (approx, _) = approximate_model(&model, &cache, &Default::default());

    let base_nl = pax_synth::opt::optimize(&BespokeCircuit::generate(&model).netlist);
    let approx_nl = pax_synth::opt::optimize(&BespokeCircuit::generate(&approx).netlist);
    let contexts = vec![
        EvalContext {
            use_coeff: false,
            netlist: &base_nl,
            model: &model,
            analysis: analyze(&base_nl, &model, &train),
        },
        EvalContext {
            use_coeff: true,
            netlist: &approx_nl,
            model: &approx,
            analysis: analyze(&approx_nl, &approx, &train),
        },
    ];

    // 3. One engine, two strategies. The engine's cache persists, so
    //    the evolutionary pass re-measures nothing the sweep covered.
    let evaluator = Evaluator::new(&lib, &tech, &test, contexts);
    let mut engine = Engine::new(&evaluator, &PruneConfig::default());

    let grid = engine.run(&mut ExhaustiveGrid::new()).expect("grid search");
    report("exhaustive grid", &grid);

    let budget = (grid.stats.evaluated / 4).max(4);
    let mut nsga = Nsga2::new(Nsga2Config {
        population: (budget / 3).clamp(6, 16),
        max_evals: budget,
        ..Default::default()
    });
    println!(
        "\nevolutionary pass: budget {budget} fresh evaluations (25% of the grid's), seed {}",
        pax_core::explore::resolve_seed(Nsga2Config::default().seed),
    );
    let evo = engine.run(&mut nsga).expect("evolutionary search");
    report("nsga2", &evo);

    // 4. Compare fronts by hypervolume in a shared reference box.
    let ref_area =
        grid.points.iter().chain(evo.points.iter()).map(|(_, p)| p.area_mm2).fold(0.0, f64::max)
            * 1.01;
    let hv = |o: &SearchOutcome| o.archive.hypervolume(ref_area, 0.0);
    println!("\nhypervolume (ref area {:.1} mm², accuracy 0):", ref_area);
    println!("  grid  {:.4}", hv(&grid));
    println!(
        "  nsga2 {:.4}  ({:.1}% of grid at {:.0}% of its evaluations)",
        hv(&evo),
        100.0 * hv(&evo) / hv(&grid),
        100.0 * evo.stats.evaluated as f64 / grid.stats.evaluated.max(1) as f64
    );

    // 5. The union front: what serving would actually deploy.
    let mut union = ParetoArchive::new();
    union.extend(grid.points.iter().map(|(_, p)| p.clone()));
    union.extend(evo.points.iter().map(|(_, p)| p.clone()));
    println!("\nunion front ({} designs):", union.len());
    for p in union.front() {
        println!(
            "  {:11} τc={} φc={} acc {:.3} area {:8.1} mm² power {:5.2} mW",
            p.technique.label(),
            p.tau_c.map_or("-".into(), |t| format!("{t:.3}")),
            p.phi_c.map_or("-".into(), |f| f.to_string()),
            p.accuracy,
            p.area_mm2,
            p.power_mw,
        );
    }
}

fn report(name: &str, o: &SearchOutcome) {
    println!(
        "{name}: asked {}, evaluated {} fresh, {} cache hits, {} rounds, front {}",
        o.stats.asked,
        o.stats.evaluated,
        o.stats.cache_hits,
        o.stats.generations,
        o.archive.len(),
    );
}
