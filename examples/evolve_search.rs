//! Evolutionary cross-layer search on the pluggable exploration
//! engine: one engine, two strategies, shared measurements — in 2, 3
//! and 4 objective dimensions.
//!
//! Runs the paper-faithful exhaustive `(τc, φc)` sweep and a seeded
//! NSGA-II search over the *joint* genome (baseline vs.
//! coefficient-approximated base circuit × pruning thresholds) on the
//! same [`Engine`], then compares the fronts by 2-D hypervolume.
//! Because both strategies share the engine's content-hashed
//! evaluation cache, any design the sweep already measured is free for
//! the evolutionary pass — including the closing 3-D
//! (accuracy × area × power) search and 4-D (+ delay) re-ranking,
//! which only swap the engine's [`ObjectiveSet`].
//!
//! ```text
//! cargo run --release --example evolve_search
//! PAX_SEARCH_SEED=7 cargo run --release --example evolve_search   # reseeded
//! ```

use pax_bespoke::BespokeCircuit;
use pax_core::coeff_approx::approximate_model;
use pax_core::explore::{
    CoeffGene, Engine, EvalContext, Evaluator, ExhaustiveGrid, Nsga2, Nsga2Config, ObjectiveSet,
    ParetoArchive, SearchOutcome,
};
use pax_core::mult_cache::MultCache;
use pax_core::prune::{analyze, PruneConfig};
use pax_ml::quant::{QuantSpec, QuantizedModel};
use pax_ml::synth_data::blobs;
use pax_ml::train::svm::{train_svm_classifier, SvmParams};

fn main() {
    // 1. A small printed classifier: train, quantize.
    let data = blobs("evolve", 520, 4, 3, 0.08, 42);
    let (train, test) = data.split(0.7, 1);
    let (train, test) = pax_ml::normalize(&train, &test);
    let svm = train_svm_classifier(&train, &SvmParams::default(), 7);
    let model = QuantizedModel::from_linear_classifier("evolve", &svm, QuantSpec::default());

    // 2. Both base circuits of the cross-layer flow: the exact bespoke
    //    baseline and the coefficient-approximated variant.
    let lib = egt_pdk::egt_library();
    let tech = egt_pdk::TechParams::egt();
    let cache = MultCache::new(lib.clone());
    cache.build_range(model.spec.input_bits, model.spec.coef_bits);
    let (approx, _) = approximate_model(&model, &cache, &Default::default());

    let base_nl = pax_synth::opt::optimize(&BespokeCircuit::generate(&model).netlist);
    let approx_nl = pax_synth::opt::optimize(&BespokeCircuit::generate(&approx).netlist);
    let contexts = vec![
        EvalContext {
            coeff: CoeffGene::exact(),
            netlist: &base_nl,
            model: &model,
            analysis: analyze(&base_nl, &model, &train),
        },
        EvalContext {
            coeff: CoeffGene::uniform(1),
            netlist: &approx_nl,
            model: &approx,
            analysis: analyze(&approx_nl, &approx, &train),
        },
    ];

    // 3. One engine, two strategies. The engine's cache persists, so
    //    the evolutionary pass re-measures nothing the sweep covered.
    let evaluator = Evaluator::new(&lib, &tech, &test, contexts);
    let mut engine = Engine::new(&evaluator, &PruneConfig::default());

    let grid = engine.run(&mut ExhaustiveGrid::new()).expect("grid search");
    report("exhaustive grid", &grid);

    let budget = (grid.stats.evaluated / 4).max(4);
    let mut nsga = Nsga2::new(Nsga2Config {
        population: (budget / 3).clamp(6, 16),
        max_evals: budget,
        ..Default::default()
    });
    println!(
        "\nevolutionary pass: budget {budget} fresh evaluations (25% of the grid's), seed {}",
        pax_core::explore::resolve_seed(Nsga2Config::default().seed),
    );
    let evo = engine.run(&mut nsga).expect("evolutionary search");
    report("nsga2", &evo);

    // 4. Compare fronts by hypervolume in a shared reference box.
    let ref_area =
        grid.points.iter().chain(evo.points.iter()).map(|(_, p)| p.area_mm2).fold(0.0, f64::max)
            * 1.01;
    let hv = |o: &SearchOutcome| o.archive.hypervolume(&[0.0, ref_area]);
    println!("\nhypervolume (ref area {:.1} mm², accuracy 0):", ref_area);
    println!("  grid  {:.4}", hv(&grid));
    println!(
        "  nsga2 {:.4}  ({:.1}% of grid at {:.0}% of its evaluations)",
        hv(&evo),
        100.0 * hv(&evo) / hv(&grid),
        100.0 * evo.stats.evaluated as f64 / grid.stats.evaluated.max(1) as f64
    );

    // 5. The union front: what serving would actually deploy.
    let mut union = ParetoArchive::new();
    union.extend(grid.points.iter().map(|(_, p)| p.clone()));
    union.extend(evo.points.iter().map(|(_, p)| p.clone()));
    println!("\nunion front ({} designs):", union.len());
    for p in union.front() {
        println!(
            "  {:11} τc={} φc={} acc {:.3} area {:8.1} mm² power {:5.2} mW",
            p.technique.label(),
            p.tau_c.map_or("-".into(), |t| format!("{t:.3}")),
            p.phi_c.map_or("-".into(), |f| f.to_string()),
            p.accuracy,
            p.area_mm2,
            p.power_mw,
        );
    }

    // 6. Go N-dimensional: power is measured for every candidate
    //    anyway, so swapping the engine's objective set re-ranks the
    //    cached designs and lets NSGA-II select on the 3-D front.
    engine.set_objectives(ObjectiveSet::accuracy_area_power());
    let mut nsga3 = Nsga2::new(Nsga2Config {
        population: (budget / 3).clamp(6, 16),
        max_evals: budget,
        ..Default::default()
    });
    let evo3 = engine.run(&mut nsga3).expect("3-D evolutionary search");
    report("nsga2 (3-D: accuracy × area × power)", &evo3);
    let ref_power =
        evo3.points.iter().chain(grid.points.iter()).map(|(_, p)| p.power_mw).fold(0.0, f64::max)
            * 1.01;
    println!(
        "3-D hypervolume {:.4} (ref area {ref_area:.1} mm², power {ref_power:.2} mW)",
        evo3.archive.hypervolume(&[0.0, ref_area, ref_power])
    );
    println!("3-D front ({} designs):", evo3.archive.len());
    for p in evo3.archive.front() {
        println!(
            "  {:11} τc={} φc={} acc {:.3} area {:8.1} mm² power {:5.2} mW",
            p.technique.label(),
            p.tau_c.map_or("-".into(), |t| format!("{t:.3}")),
            p.phi_c.map_or("-".into(), |f| f.to_string()),
            p.accuracy,
            p.area_mm2,
            p.power_mw,
        );
    }

    // 7. The full 4-D re-ranking (accuracy × area × power × delay) of
    //    everything measured so far costs zero fresh evaluations.
    let mut four = ParetoArchive::with_objectives(ObjectiveSet::all());
    for o in [&grid, &evo, &evo3] {
        four.extend(o.points.iter().map(|(_, p)| p.clone()));
    }
    println!(
        "\n4-D front: {} of {} measured designs are non-dominated once delay counts",
        four.len(),
        four.inserted(),
    );
}

fn report(name: &str, o: &SearchOutcome) {
    println!(
        "{name}: asked {}, evaluated {} fresh, {} cache hits, {} rounds, front {}",
        o.stats.asked,
        o.stats.evaluated,
        o.stats.cache_hits,
        o.stats.generations,
        o.archive.len(),
    );
}
