//! Quickstart: train a tiny printed classifier, run the cross-layer
//! approximation framework, and pick a design.
//!
//! ```text
//! cargo run --release -p pax-core --example quickstart
//! ```

use pax_core::framework::{Framework, FrameworkConfig};
use pax_core::Technique;
use pax_ml::quant::{QuantSpec, QuantizedModel};
use pax_ml::synth_data::blobs;
use pax_ml::train::svm::{train_svm_classifier, SvmParams};

fn main() {
    // 1. Data: a small 4-feature, 3-class sensor-style dataset.
    let data = blobs("quickstart", 600, 4, 3, 0.08, 42);
    let (train, test) = data.split(0.7, 1);
    let (train, test) = pax_ml::normalize(&train, &test);

    // 2. Train a linear SVM classifier and quantize it to the printed
    //    fixed-point format (4-bit inputs, 8-bit coefficients).
    let svm = train_svm_classifier(&train, &SvmParams::default(), 7);
    let model = QuantizedModel::from_linear_classifier("quickstart", &svm, QuantSpec::default());
    println!(
        "trained {}-class SVM over {} features ({} hardwired coefficients)",
        model.n_classes,
        model.n_inputs(),
        model.n_coefficients()
    );

    // 3. Run the full cross-layer approximation flow.
    let fw = Framework::new(FrameworkConfig::default());
    let study = fw.run_study(&model, &train, &test);
    println!(
        "baseline bespoke circuit: {:.1} cm², {:.1} mW, accuracy {:.3}",
        study.baseline.area_cm2(),
        study.baseline.power_mw,
        study.baseline.accuracy
    );
    println!(
        "coefficient approximation alone: {:.1} cm² ({:.0}% smaller), accuracy {:.3}",
        study.coeff.area_cm2(),
        100.0 * (1.0 - study.coeff.norm_area(study.baseline.area_mm2)),
        study.coeff.accuracy
    );

    // 4. Pick the smallest design losing less than 1% accuracy — the
    //    paper's Table II selection.
    let best = study.best_within_loss(Technique::Cross, 0.01);
    println!(
        "cross-layer pick: {:.1} cm², {:.1} mW, accuracy {:.3} (τc={:?}, φc={:?})",
        best.area_cm2(),
        best.power_mw,
        best.accuracy,
        best.tau_c,
        best.phi_c
    );

    // 5. Materialize its netlist and export it as structural Verilog.
    let netlist = fw.materialize(&model, &train, &best);
    let verilog = pax_netlist::verilog::to_verilog(&netlist);
    println!(
        "final netlist: {} gates, {} lines of structural Verilog",
        netlist.gate_count(),
        verilog.lines().count()
    );
}
