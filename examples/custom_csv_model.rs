//! Bring-your-own-data: load a CSV, train, approximate, and export every
//! artifact (model dump, Verilog, DOT, SAIF).
//!
//! The example writes a small synthetic CSV to a temp directory to stay
//! self-contained; point `load_csv` at a real file (e.g. a UCI download
//! with `features…,label` rows) to use your own data.
//!
//! ```text
//! cargo run --release -p pax-core --example custom_csv_model
//! ```

use pax_core::framework::{Framework, FrameworkConfig};
use pax_core::Technique;
use pax_ml::quant::{QuantSpec, QuantizedModel};
use pax_ml::synth_data::load_csv;
use pax_ml::train::svm::{train_svm_classifier, SvmParams};

fn main() {
    // A stand-in for the user's CSV file.
    let path = std::env::temp_dir().join("pax_custom_demo.csv");
    let mut csv = String::from("f0,f1,f2,label\n");
    let mut state = 0x1234u64;
    for _ in 0..400 {
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 40) as f64 / (1u64 << 24) as f64
        };
        let (a, b, c) = (next(), next(), next());
        let label = usize::from(a + 0.5 * b > 0.8) + usize::from(a + c > 1.2);
        csv.push_str(&format!("{a:.4},{b:.4},{c:.4},{label}\n"));
    }
    std::fs::write(&path, csv).expect("write demo csv");

    // 1. Ingest.
    let data = load_csv("custom", &path).expect("parse csv");
    println!(
        "loaded {}: {} rows, {} features, {} classes",
        path.display(),
        data.len(),
        data.n_features(),
        data.n_classes
    );
    let (train, test) = data.split(0.7, 3);
    let (train, test) = pax_ml::normalize(&train, &test);

    // 2. Train + quantize + dump the model (the scikit-learn-dump
    //    equivalent of the paper's flow).
    let svc = train_svm_classifier(&train, &SvmParams::default(), 5);
    let model = QuantizedModel::from_linear_classifier("custom", &svc, QuantSpec::default());
    let dump = pax_ml::serialize::to_text(&model);
    let model_path = std::env::temp_dir().join("pax_custom_model.txt");
    std::fs::write(&model_path, &dump).expect("write model dump");
    let reloaded = pax_ml::serialize::from_text(&dump).expect("reload model");
    assert_eq!(reloaded, model);
    println!("model dumped to {} ({} bytes) and reloaded", model_path.display(), dump.len());

    // 3. Approximate.
    let fw = Framework::new(FrameworkConfig::default());
    let study = fw.run_study(&model, &train, &test);
    let pick = study.best_within_loss(Technique::Cross, 0.01);
    println!(
        "cross-layer design: {:.2} cm² ({:.0}% below baseline), accuracy {:.3}",
        pick.area_cm2(),
        100.0 * (1.0 - pick.norm_area(study.baseline.area_mm2)),
        pick.accuracy
    );

    // 4. Export hardware artifacts.
    let netlist = fw.materialize(&model, &train, &pick);
    let out_dir = std::env::temp_dir().join("pax_custom_out");
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    std::fs::write(out_dir.join("design.v"), pax_netlist::verilog::to_verilog(&netlist))
        .expect("write verilog");
    std::fs::write(out_dir.join("design.dot"), pax_netlist::dot::to_dot(&netlist))
        .expect("write dot");
    let stim = pax_bespoke::stimulus_for(&model, &test);
    let sim = pax_sim::simulate(&netlist, &stim);
    std::fs::write(out_dir.join("design.saif"), pax_sim::saif::to_saif(&netlist, &sim.activity))
        .expect("write saif");
    println!("wrote design.v / design.dot / design.saif under {}", out_dir.display());
}
